"""Replication & failover subsystem (PR 10).

Covers replica placement (mirror pairing, chained declustering), the
failover scan-site computation (balanced single-failure split, whole
fragment fallback, unreachability), and the runtime end to end: reads
fail over to surviving copies while single-copy runs hold every join,
rack-scoped crashes take down exactly the rack's PEs (and defeat chained
declustering when primary+backup share the rack), crash-coupled arrival
surges model cascading overload, permanent losses trigger re-replication
work, and planned drains remove a PE with zero aborts.  Determinism is
pinned the usual way: exact ``==`` on serialised results across hash
seeds and worker counts.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.config.parameters import TopologyConfig
from repro.database.allocation import (
    allocate_paper_database,
    assign_replicas,
    decluster,
    failover_scan_sites,
)
from repro.experiments.scenarios import homogeneous_config, mixed_workload_config
from repro.faults.plan import FaultEvent
from repro.simulation.driver import SimulationDriver


def _relations(num_pe=8, replication=None):
    config = homogeneous_config(num_pe)
    if replication is not None:
        config = config.with_overrides(replication=replication)
    return config, allocate_paper_database(config)


# -- replica placement --------------------------------------------------------------
def test_chained_placement_is_next_ring_pe():
    _, relations = _relations(replication="chained")
    a, b = relations["A"], relations["B"]
    assert a.node_ids == [0, 1] and b.node_ids == [2, 3, 4, 5, 6, 7]
    assert a.backups == {0: 1, 1: 0}
    assert b.backups == {2: 3, 3: 4, 4: 5, 5: 6, 6: 7, 7: 2}
    assert b.backup_of(5) == 6 and b.backup_of(9) is None


def test_mirror_placement_pairs_adjacent_ring_pes():
    config, relations = _relations(replication="mirror")
    assert relations["B"].backups == {2: 3, 3: 2, 4: 5, 5: 4, 6: 7, 7: 6}
    # Odd-sized ring: the unpaired last position wraps to ring[0].
    odd = decluster(config.relation_a, [0, 1, 2], config.disk.disks_per_pe)
    assign_replicas(odd, "mirror")
    assert odd.backups == {0: 1, 1: 0, 2: 0}
    # Single-PE ring: nowhere disjoint to place a copy.
    single = decluster(config.relation_a, [4], config.disk.disks_per_pe)
    assign_replicas(single, "mirror")
    assert single.backups == {}
    with pytest.raises(ValueError, match="unknown replication policy"):
        assign_replicas(single, "raid")


# -- failover scan sites ------------------------------------------------------------
def test_all_alive_sites_are_the_primaries():
    _, relations = _relations(replication="chained")
    b = relations["B"]
    sites = failover_scan_sites(b, frozenset())
    assert sites == [(pe, b.fragment_on(pe), 1.0) for pe in b.node_ids]


def test_chained_single_failure_balances_load_across_survivors():
    _, relations = _relations(replication="chained")
    b = relations["B"]
    sites = failover_scan_sites(b, frozenset({3}))
    assert all(pe != 3 for pe, _, _ in sites)
    # Every fragment is read exactly once in total...
    coverage = {pe: 0.0 for pe in b.node_ids}
    for _, fragment, fraction in sites:
        owner = next(pe for pe in b.node_ids if b.fragment_on(pe) is fragment)
        coverage[owner] += fraction
    assert all(total == pytest.approx(1.0) for total in coverage.values())
    # ...and every survivor carries the same n/(n-1) share of the scan load.
    load = {pe: 0.0 for pe in b.node_ids if pe != 3}
    for pe, _, fraction in sites:
        load[pe] += fraction
    assert all(total == pytest.approx(6 / 5) for total in load.values())
    # The dead PE's own fragment is served entirely by its chained backup.
    assert (4, b.fragment_on(3), 1.0) in sites


def test_multi_failure_falls_back_to_whole_fragment_failover():
    _, relations = _relations(replication="chained")
    b = relations["B"]
    sites = failover_scan_sites(b, frozenset({3, 5}))  # non-adjacent pair
    assert all(fraction == 1.0 for _, _, fraction in sites)
    assert (4, b.fragment_on(3), 1.0) in sites
    assert (6, b.fragment_on(5), 1.0) in sites


def test_unreachable_data_returns_none():
    # Chained: adjacent primary+backup both dead -> the fragment is gone.
    _, relations = _relations(replication="chained")
    assert failover_scan_sites(relations["B"], frozenset({3, 4})) is None
    # Mirror: a dead pair takes both copies.
    _, mirrored = _relations(replication="mirror")
    assert failover_scan_sites(mirrored["B"], frozenset({2, 3})) is None
    # No replication at all: any ring death is unreachable.
    _, single = _relations(replication=None)
    assert failover_scan_sites(single["B"], frozenset({2})) is None


# -- runtime: failover vs outage ----------------------------------------------------
CRASH_PE1 = (FaultEvent(time=5.0, kind="pe_crash", pe=1, duration=10.0),)


def _crash_run(replication):
    config = homogeneous_config(8)
    if replication is not None:
        config = config.with_overrides(replication=replication)
    driver = SimulationDriver(config, faults=CRASH_PE1)
    result = driver.run_timed(20.0, timeline_window=5.0)
    return driver, result


def test_single_copy_crash_is_a_total_outage():
    driver, result = _crash_run(None)
    windows = list(result.timeline)
    outage = windows[1:3]  # [5,10) and [10,15): PE 1 down
    assert [window.joins_completed for window in outage] == [0, 0]
    # A's fragment on PE 1 (125k of 1.25M tuples) is unreachable: 0.9.
    assert [window.effective_availability for window in outage] == [
        pytest.approx(0.9),
        pytest.approx(0.9),
    ]
    runtime = driver.system.faults
    assert runtime.holds > 0 and not runtime._held  # drained at recovery
    assert windows[3].joins_completed > 0  # held burst completes


def test_chained_crash_degrades_gracefully():
    driver, result = _crash_run("chained")
    windows = list(result.timeline)
    outage = windows[1:3]
    # Reads failed over to surviving copies: joins keep completing and no
    # data ever became unreachable.
    assert all(window.joins_completed > 0 for window in outage)
    assert all(window.effective_availability == 1.0 for window in result.timeline)
    assert driver.system.faults.holds == 0
    # Pool availability still shows the crash (7 of 8 PEs): the two
    # availability notions separate exactly here.
    assert windows[1].availability == pytest.approx(7 / 8)


def test_crash_contrast_none_vs_chained_differs_and_is_deterministic():
    _, none_result = _crash_run(None)
    _, chained_result = _crash_run("chained")
    assert none_result.to_dict() != chained_result.to_dict()
    _, again = _crash_run("chained")
    assert again.to_dict() == chained_result.to_dict()


# -- rack-scoped correlated failures ------------------------------------------------
RACKED = {
    "topology": TopologyConfig(racks=4, cross_rack_latency_factor=2.0),
}


def test_rack_crash_kills_exactly_the_racks_pes():
    config = homogeneous_config(8).with_overrides(replication="chained", **RACKED)
    driver = SimulationDriver(
        config,
        faults=(FaultEvent(time=1.0, kind="pe_crash", rack=1, duration=2.0),),
    )
    driver.system.start()
    driver.env.run(until=2.0)
    runtime = driver.system.faults
    assert runtime.dead_pes() == frozenset({2, 3})  # rack 1 of 4 on 8 PEs
    assert runtime.eligible_processors() == (0, 1, 4, 5, 6, 7)
    driver.env.run(until=4.0)
    assert runtime.dead_pes() == frozenset()
    # Chained declustering places the backup on the *next* ring PE -- the
    # same rack -- so the correlated failure takes both copies down.
    assert failover_scan_sites(
        driver.system.catalog.relation("B"), frozenset({2, 3})
    ) is None


def test_rack_fault_validates_against_topology():
    config = homogeneous_config(8).with_overrides(**RACKED)
    with pytest.raises(ValueError, match="rack 7"):
        SimulationDriver(
            config, faults=(FaultEvent(time=1.0, kind="pe_crash", rack=7),)
        )


# -- cascading overload (crash-coupled surge) ---------------------------------------
def test_crash_surge_scales_arrivals_and_retracts_at_recovery():
    def run(surge):
        # Busy arrivals: the scale applies to delays *sampled* while the
        # surge is active (RNG streams stay untouched), so the window must
        # contain draws for the coupling to bite.
        config = homogeneous_config(4, arrival_rate_per_pe=1.0).with_overrides(
            replication="chained"
        )
        driver = SimulationDriver(
            config,
            faults=(
                FaultEvent(time=2.0, kind="pe_crash", pe=1, duration=3.0, surge=surge),
            ),
        )
        result = driver.run_timed(12.0, timeline_window=3.0)
        return driver, result

    base_driver, base = run(None)
    surged_driver, surged = run(4.0)
    del base, surged
    assert (
        surged_driver.system.workload_generator.generated["join"]
        > base_driver.system.workload_generator.generated["join"]
    )
    # The surge is retracted by the matching recover: the generator is back
    # to the nominal rate (and the surge bookkeeping is empty) at the end.
    assert surged_driver.system.workload_generator.rate_scale == 1.0
    assert not surged_driver.system.faults._surges
    assert base_driver.system.workload_generator.rate_scale == 1.0


# -- re-replication after permanent loss --------------------------------------------
def test_permanent_loss_re_replicates_the_fragment():
    config = homogeneous_config(8).with_overrides(replication="chained")
    driver = SimulationDriver(
        config,
        faults=(FaultEvent(time=2.0, kind="pe_crash", pe=3),),  # never recovers
    )
    driver.system.start()
    driver.env.run(until=10.0)
    runtime = driver.system.faults
    assert runtime.rebalanced_pages == 0  # the background copy is in flight
    # Shipping and rewriting the 8k-page fragment takes the backup's disk
    # about a minute of simulated time; run past it.
    driver.env.run(until=120.0)
    b = driver.system.catalog.relation("B")
    assert runtime.rebalanced_pages == b.fragment_on(3).pages


def test_temporary_crash_does_not_re_replicate():
    driver, _ = _crash_run("chained")
    assert driver.system.faults.rebalanced_pages == 0


# -- replica-maintenance writes (OLTP) ----------------------------------------------
def test_oltp_replica_maintenance_changes_the_run():
    def run(replication):
        # 8 PEs: ACCT spans two OLTP nodes, so each has a distinct backup
        # (at 4 PEs the single-node ACCT ring keeps no copy at all).
        config = mixed_workload_config(8)
        if replication is not None:
            config = config.with_overrides(replication=replication)
        return SimulationDriver(config).run_timed(8.0, timeline_window=2.0)

    base = run(None)
    mirrored = run("mirror")
    assert sum(w.oltp_completed for w in mirrored.timeline) > 0
    # Shipping every log write to the backup PE costs CPU + network + a
    # random write there: the run cannot be byte-identical to single-copy.
    assert mirrored.to_dict() != base.to_dict()
    assert run("mirror").to_dict() == mirrored.to_dict()  # but is deterministic


# -- planned drain ------------------------------------------------------------------
def test_drain_removes_pe_with_zero_aborts():
    config = homogeneous_config(4)
    driver = SimulationDriver(
        config,
        faults=(FaultEvent(time=1.0, kind="pe_remove", pe=3, pages=32, drain=True),),
    )
    driver.run_timed(12.0, timeline_window=3.0)
    runtime = driver.system.faults
    assert runtime.kills == 0  # nothing aborted: that is the point of drain
    assert runtime.rebalanced_pages == 32  # pages still shipped out, later
    assert runtime.eligible_processors() == (0, 1, 2)


def test_held_joins_keep_arrival_order():
    driver = SimulationDriver(
        homogeneous_config(8),
        faults=(FaultEvent(time=2.0, kind="pe_crash", pe=1, duration=10.0),),
    )
    driver.run_timed(10.0, timeline_window=5.0)  # ends mid-outage
    held = driver.system.faults._held
    assert len(held) >= 2
    txn_ids = [transaction.txn_id for transaction in held]
    assert txn_ids == sorted(txn_ids)  # arrival order, ready for release


# -- determinism: hash seeds and worker counts --------------------------------------
_HASH_SEED_SCRIPT = """\
import json
from repro.config.parameters import TopologyConfig
from repro.faults.plan import FaultEvent
from repro.experiments.scenarios import homogeneous_config
from repro.simulation.driver import SimulationDriver

config = homogeneous_config(8).with_overrides(
    replication="chained",
    topology=TopologyConfig(racks=4, cross_rack_latency_factor=2.0),
)
driver = SimulationDriver(
    config,
    faults=(
        FaultEvent(time=2.0, kind="pe_crash", pe=1, duration=3.0, surge=2.0),
        FaultEvent(time=3.0, kind="pe_remove", pe=6, pages=16, drain=True),
    ),
)
print(json.dumps(driver.run_timed(12.0, timeline_window=3.0).to_dict(), sort_keys=True))
"""


def test_failover_run_invariant_under_hash_randomisation():
    """Failover sites, surge retraction and drain polling iterate sets and
    dicts; none of that may leak interpreter hash order into outcomes."""
    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parent.parent)
    outputs = []
    for seed in ("0", "1"):
        env["PYTHONHASHSEED"] = seed
        proc = subprocess.run(
            [sys.executable, "-c", _HASH_SEED_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        outputs.append(json.loads(proc.stdout))
    assert outputs[0] == outputs[1]


def test_replication_scenario_expands_and_is_worker_count_invariant():
    from repro.experiments.replication import build_spec
    from repro.runner import ParallelRunner

    spec = build_spec(
        system_sizes=(8,),
        strategies=("OPT-IO-CPU",),
        fault_names=("crash",),
        replication=("none", "chained"),
        max_simulated_time=20.0,
    )
    points = spec.points()
    assert [point.series for point in points] == [
        "OPT-IO-CPU none [crash1@15]",
        "OPT-IO-CPU chained [crash1@15]",
    ]
    assert points[0].replication is None  # "none" canonicalises away
    assert points[1].replication == "chained"
    serial = ParallelRunner(workers=1).run_points(points)
    parallel = ParallelRunner(workers=2).run_points(points)
    assert [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]
