"""Golden-file determinism tests for the kernel overhauls (PR 5 / PR 6).

The golden CSV under ``tests/data/`` was exported with the pre-overhaul
kernel; the refactored kernel must reproduce it byte for byte, at any worker
count -- the PR's "no simulation outcome changes" guarantee, checked on every
run.  PR 6 extends the pin: the event-coalescing layer must be invisible,
so the export is also byte-identical with coalescing disabled
(``REPRO_COALESCE=0``), and a dynamic timeline run agrees field for field
between the two modes.  Regenerate (only after an *intentional* outcome
change) with::

    PYTHONPATH=src python -m repro.cli experiment figure5 \
        --sizes 10 --joins 8 --time-limit 40 --replicates 2 --workers 1 \
        --no-cache --export csv --output tests/data/figure5_golden.csv
"""

from pathlib import Path

import pytest

from repro.cli import main

GOLDEN = Path(__file__).parent / "data" / "figure5_golden.csv"

GOLDEN_ARGS = [
    "experiment", "figure5",
    "--sizes", "10", "--joins", "8", "--time-limit", "40",
    "--replicates", "2", "--no-cache", "--export", "csv",
]


@pytest.mark.parametrize("workers", [1, 2])
def test_figure5_export_matches_golden(tmp_path, workers):
    out = tmp_path / "figure5.csv"
    code = main(GOLDEN_ARGS + ["--workers", str(workers), "--output", str(out)])
    assert code == 0
    assert out.read_bytes() == GOLDEN.read_bytes()


def test_figure5_export_identical_with_coalescing_off(tmp_path, monkeypatch):
    """Macro-event coalescing must not change any simulation outcome."""
    monkeypatch.setenv("REPRO_COALESCE", "0")
    out = tmp_path / "figure5_uncoalesced.csv"
    code = main(GOLDEN_ARGS + ["--workers", "1", "--output", str(out)])
    assert code == 0
    assert out.read_bytes() == GOLDEN.read_bytes()


def test_dynamic_timeline_identical_with_coalescing_off(monkeypatch):
    """A windowed (dynamic) run agrees field for field between modes --
    coalescing must be invisible to open-workload timelines, not just to
    the closed figure sweeps."""
    from repro.experiments.scenarios import homogeneous_config
    from repro.simulation.driver import SimulationDriver

    def run():
        config = homogeneous_config(4, seed=42)
        driver = SimulationDriver(config, strategy="OPT-IO-CPU")
        return driver.run_timed(10.0, timeline_window=2.0).to_dict()

    batched = run()
    monkeypatch.setenv("REPRO_COALESCE", "0")
    unbatched = run()
    assert batched == unbatched
