"""Golden-file determinism test for the kernel hot-path overhaul (PR 5).

The golden CSV under ``tests/data/`` was exported with the pre-overhaul
kernel; the refactored kernel must reproduce it byte for byte, at any worker
count -- the PR's "no simulation outcome changes" guarantee, checked on every
run.  Regenerate (only after an *intentional* outcome change) with::

    PYTHONPATH=src python -m repro.cli experiment figure5 \
        --sizes 10 --joins 8 --time-limit 40 --replicates 2 --workers 1 \
        --no-cache --export csv --output tests/data/figure5_golden.csv
"""

from pathlib import Path

import pytest

from repro.cli import main

GOLDEN = Path(__file__).parent / "data" / "figure5_golden.csv"

GOLDEN_ARGS = [
    "experiment", "figure5",
    "--sizes", "10", "--joins", "8", "--time-limit", "40",
    "--replicates", "2", "--no-cache", "--export", "csv",
]


@pytest.mark.parametrize("workers", [1, 2])
def test_figure5_export_matches_golden(tmp_path, workers):
    out = tmp_path / "figure5.csv"
    code = main(GOLDEN_ARGS + ["--workers", str(workers), "--output", str(out)])
    assert code == 0
    assert out.read_bytes() == GOLDEN.read_bytes()
