"""Golden-file determinism tests for the kernel overhauls (PR 5 / PR 6).

The golden CSV under ``tests/data/`` was exported with the pre-overhaul
kernel; the refactored kernel must reproduce it byte for byte, at any worker
count -- the PR's "no simulation outcome changes" guarantee, checked on every
run.  PR 6 extends the pin: the event-coalescing layer must be invisible,
so the export is also byte-identical with coalescing disabled
(``REPRO_COALESCE=0``), and a dynamic timeline run agrees field for field
between the two modes.  Regenerate (only after an *intentional* outcome
change) with::

    PYTHONPATH=src python -m repro.cli experiment figure5 \
        --sizes 10 --joins 8 --time-limit 40 --replicates 2 --workers 1 \
        --no-cache --export csv --output tests/data/figure5_golden.csv
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

GOLDEN = Path(__file__).parent / "data" / "figure5_golden.csv"

GOLDEN_ARGS = [
    "experiment", "figure5",
    "--sizes", "10", "--joins", "8", "--time-limit", "40",
    "--replicates", "2", "--no-cache", "--export", "csv",
]


@pytest.mark.parametrize("workers", [1, 2])
def test_figure5_export_matches_golden(tmp_path, workers):
    out = tmp_path / "figure5.csv"
    code = main(GOLDEN_ARGS + ["--workers", str(workers), "--output", str(out)])
    assert code == 0
    assert out.read_bytes() == GOLDEN.read_bytes()


def test_figure5_export_identical_with_coalescing_off(tmp_path, monkeypatch):
    """Macro-event coalescing must not change any simulation outcome."""
    monkeypatch.setenv("REPRO_COALESCE", "0")
    out = tmp_path / "figure5_uncoalesced.csv"
    code = main(GOLDEN_ARGS + ["--workers", "1", "--output", str(out)])
    assert code == 0
    assert out.read_bytes() == GOLDEN.read_bytes()


def test_dynamic_timeline_identical_with_coalescing_off(monkeypatch):
    """A windowed (dynamic) run agrees field for field between modes --
    coalescing must be invisible to open-workload timelines, not just to
    the closed figure sweeps."""
    from repro.experiments.scenarios import homogeneous_config
    from repro.simulation.driver import SimulationDriver

    def run():
        config = homogeneous_config(4, seed=42)
        driver = SimulationDriver(config, strategy="OPT-IO-CPU")
        return driver.run_timed(10.0, timeline_window=2.0).to_dict()

    batched = run()
    monkeypatch.setenv("REPRO_COALESCE", "0")
    unbatched = run()
    assert batched == unbatched


def _run_figure9_mixed_point():
    """One small Fig. 9b-style point: OLTP on the B nodes preempting joins."""
    from repro.experiments import figure9

    experiment = figure9.run(
        oltp_placement="B",
        system_sizes=(10,),
        strategies=("OPT-IO-CPU",),
        measured_joins=6,
        max_simulated_time=20.0,
        workers=1,
    )
    return experiment.value("OPT-IO-CPU", 10).result.to_dict()


def test_figure9_mixed_point_identical_with_coalescing_off(monkeypatch):
    """Mixed OLTP+join workloads exercise the OLTP-preemption split/relay
    path of the coalescing layer, which neither the figure5 sweep nor the
    timeline scenario reaches -- pin batched == unbatched there too."""
    batched = _run_figure9_mixed_point()
    monkeypatch.setenv("REPRO_COALESCE", "0")
    unbatched = _run_figure9_mixed_point()
    assert batched == unbatched


_HASH_SEED_SCRIPT = """\
import json
from repro.experiments import figure9

experiment = figure9.run(
    oltp_placement="B",
    system_sizes=(10,),
    strategies=("OPT-IO-CPU",),
    measured_joins=6,
    max_simulated_time=20.0,
    workers=1,
)
print(json.dumps(experiment.value("OPT-IO-CPU", 10).result.to_dict(), sort_keys=True))
"""


def test_figure9_mixed_point_invariant_under_hash_randomisation():
    """Simulation outcomes must not depend on PYTHONHASHSEED (regression:
    LockManager tracked each transaction's held locks in a set keyed by
    string-bearing tuples, so commit-time release -- and with it the waiter
    wake-up order of conflicting OLTP transactions -- followed the
    interpreter's string-hash order, making the Fig. 9 mixed-workload tables
    vary from run to run)."""
    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parent.parent)
    outputs = []
    for seed in ("0", "1"):
        env["PYTHONHASHSEED"] = seed
        proc = subprocess.run(
            [sys.executable, "-c", _HASH_SEED_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        outputs.append(json.loads(proc.stdout))
    assert outputs[0] == outputs[1]


def test_empty_fault_plan_is_byte_invisible(monkeypatch):
    """PR 8: the fault layer is wired into every run, but an empty plan must
    construct no injector and take the exact historical code paths -- field
    for field, with coalescing on and off."""
    from repro.experiments.scenarios import mixed_workload_config
    from repro.simulation.driver import SimulationDriver

    def run(faults):
        driver = SimulationDriver(
            mixed_workload_config(6), strategy="OPT-IO-CPU", faults=faults
        )
        return driver.run_timed(10.0, timeline_window=2.0).to_dict()

    for mode in ("1", "0"):
        monkeypatch.setenv("REPRO_COALESCE", mode)
        assert run(None) == run(())
