"""Tests for query classes, routing, arrival generation, TPC-B profile and traces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import InstructionCosts, OltpConfig, SystemConfig
from repro.sim import Environment
from repro.workload import (
    AffinityRouter,
    JoinQuery,
    OltpTransaction,
    QueryClass,
    RandomRouter,
    RoundRobinRouter,
    ScanQuery,
    Trace,
    TraceReplayer,
    UpdateStatement,
    WorkloadClass,
    WorkloadGenerator,
    WorkloadSpec,
    build_cost_profile,
    generate_trace,
)


# -- query classes ---------------------------------------------------------------
def test_transaction_ids_are_unique():
    q1 = JoinQuery()
    q2 = JoinQuery()
    assert q1.txn_id != q2.txn_id


def test_response_time_requires_completion():
    query = JoinQuery(arrival_time=10.0)
    assert query.response_time is None
    query.completion_time = 12.5
    assert query.response_time == pytest.approx(2.5)


def test_read_only_flags():
    assert JoinQuery().read_only is True
    assert ScanQuery().read_only is True
    assert UpdateStatement().read_only is False
    assert OltpTransaction().read_only is False


def test_query_class_values():
    assert JoinQuery().query_class is QueryClass.TWO_WAY_JOIN
    assert OltpTransaction().query_class is QueryClass.OLTP


# -- routers ----------------------------------------------------------------------
def test_random_router_covers_candidates():
    router = RandomRouter(pe_ids=[1, 2, 3], seed=1)
    seen = {router.route(JoinQuery()) for _ in range(200)}
    assert seen == {1, 2, 3}


def test_random_router_is_deterministic_per_seed():
    seq1 = [RandomRouter([0, 1, 2, 3], seed=9).route(JoinQuery()) for _ in range(5)]
    seq2 = [RandomRouter([0, 1, 2, 3], seed=9).route(JoinQuery()) for _ in range(5)]
    assert seq1 == seq2


def test_random_router_requires_pes():
    with pytest.raises(ValueError):
        RandomRouter([])


def test_round_robin_router_cycles():
    router = RoundRobinRouter([5, 6])
    assert [router.route(JoinQuery()) for _ in range(4)] == [5, 6, 5, 6]


def test_affinity_router_keeps_oltp_local():
    router = AffinityRouter(oltp_pe_ids=[0, 1], all_pe_ids=list(range(10)), seed=3)
    txn = OltpTransaction(home_pe=1)
    assert router.route(txn) == 1
    # OLTP without a pre-assigned home gets one of the OLTP nodes.
    other = OltpTransaction()
    assert router.route(other) in {0, 1}
    assert other.home_pe in {0, 1}
    # Joins may land anywhere.
    join_targets = {router.route(JoinQuery()) for _ in range(100)}
    assert join_targets - {0, 1}


# -- workload spec / generator -------------------------------------------------------
def test_homogeneous_join_spec_rate_scales_with_system_size():
    small = WorkloadSpec.homogeneous_join(SystemConfig(num_pe=10))
    large = WorkloadSpec.homogeneous_join(SystemConfig(num_pe=80))
    assert small.classes[0].arrival_rate == pytest.approx(2.5)
    assert large.classes[0].arrival_rate == pytest.approx(20.0)


def test_mixed_spec_requires_oltp_config():
    with pytest.raises(ValueError):
        WorkloadSpec.mixed_join_oltp(SystemConfig(num_pe=10))


def test_mixed_spec_oltp_rate_uses_node_count():
    config = SystemConfig(num_pe=40, oltp=OltpConfig(placement="A", arrival_rate_per_node=100))
    spec = WorkloadSpec.mixed_join_oltp(config)
    names = {cls.name: cls for cls in spec.classes}
    assert names["oltp"].arrival_rate == pytest.approx(100 * config.a_node_count)
    assert names["join"].arrival_rate == pytest.approx(0.25 * 40)


def test_generator_produces_expected_count_for_deterministic_arrivals():
    env = Environment()
    produced = []

    spec = WorkloadSpec(seed=1)
    spec.add(
        WorkloadClass(
            name="join",
            factory=JoinQuery,
            arrival_rate=10.0,
            deterministic=True,
        )
    )
    generator = WorkloadGenerator(env, spec, produced.append)
    generator.start()
    env.run(until=1.0)
    assert len(produced) == 10
    assert generator.generated["join"] == 10
    assert all(isinstance(txn, JoinQuery) for txn in produced)
    assert produced[0].arrival_time == pytest.approx(0.1)


def test_generator_poisson_rate_is_roughly_right():
    env = Environment()
    produced = []
    spec = WorkloadSpec(seed=7)
    spec.add(WorkloadClass(name="join", factory=JoinQuery, arrival_rate=50.0))
    WorkloadGenerator(env, spec, produced.append).start()
    env.run(until=20.0)
    # 1000 expected; allow generous tolerance for randomness.
    assert 800 <= len(produced) <= 1200


def test_generator_zero_rate_produces_nothing():
    env = Environment()
    produced = []
    spec = WorkloadSpec()
    spec.add(WorkloadClass(name="idle", factory=JoinQuery, arrival_rate=0.0))
    WorkloadGenerator(env, spec, produced.append).start()
    env.run(until=10.0)
    assert produced == []


# -- TPC-B profile ---------------------------------------------------------------------
def test_oltp_cost_profile_structure():
    profile = build_cost_profile(OltpConfig(), InstructionCosts())
    assert profile.page_reads == 4 * 3
    assert profile.cpu_instructions > 50_000
    assert 0 < profile.expected_disk_reads < profile.page_reads
    assert profile.log_writes == 1


def test_oltp_cost_profile_scales_with_accesses():
    small = build_cost_profile(OltpConfig(tuple_accesses=2), InstructionCosts())
    large = build_cost_profile(OltpConfig(tuple_accesses=8), InstructionCosts())
    assert large.cpu_instructions > small.cpu_instructions
    assert large.page_reads == 4 * small.page_reads


# -- traces ----------------------------------------------------------------------------
def test_generate_trace_is_sorted_and_bounded():
    spec = WorkloadSpec.homogeneous_join(SystemConfig(num_pe=20))
    trace = generate_trace(spec, duration=10.0)
    times = [record.arrival_time for record in trace]
    assert times == sorted(times)
    assert all(0 < t <= 10.0 for t in times)
    assert trace.duration <= 10.0
    assert trace.class_counts().get("join", 0) == len(trace)


def test_generate_trace_deterministic_for_seed():
    spec = WorkloadSpec.homogeneous_join(SystemConfig(num_pe=20))
    t1 = generate_trace(spec, duration=5.0, seed=3)
    t2 = generate_trace(spec, duration=5.0, seed=3)
    assert [r.arrival_time for r in t1] == [r.arrival_time for r in t2]


def test_trace_replayer_submits_all_records():
    env = Environment()
    spec = WorkloadSpec.homogeneous_join(SystemConfig(num_pe=10))
    trace = generate_trace(spec, duration=4.0, seed=11)
    received = []
    replayer = TraceReplayer(env, spec, trace, received.append)
    replayer.start()
    env.run()
    assert len(received) == len(trace)
    assert replayer.replayed == len(trace)
    assert all(txn.arrival_time > 0 for txn in received)


def test_trace_replayer_unknown_class_raises():
    env = Environment()
    spec = WorkloadSpec.homogeneous_join(SystemConfig(num_pe=10))
    bad_trace = Trace(records=[])
    from repro.workload import TraceRecord

    bad_trace.records.append(TraceRecord(arrival_time=0.5, class_name="nope"))
    replayer = TraceReplayer(env, spec, bad_trace, lambda txn: None)
    replayer.start()
    with pytest.raises(KeyError):
        env.run()


@settings(max_examples=25, deadline=None)
@given(rate=st.floats(min_value=0.5, max_value=50.0), duration=st.floats(min_value=1.0, max_value=20.0))
def test_trace_length_close_to_expectation(rate, duration):
    spec = WorkloadSpec(seed=5)
    spec.add(WorkloadClass(name="c", factory=JoinQuery, arrival_rate=rate, deterministic=True))
    trace = generate_trace(spec, duration=duration)
    # Floating-point accumulation may shift the last arrival across the
    # duration boundary, so allow an off-by-one.
    assert abs(len(trace) - int(rate * duration)) <= 1


# -- router coverage (PR 3) -------------------------------------------------------
def test_affinity_router_is_deterministic_per_seed():
    def routes(seed):
        router = AffinityRouter(oltp_pe_ids=[0, 1], all_pe_ids=list(range(8)), seed=seed)
        return [router.route(JoinQuery()) for _ in range(20)] + [
            router.route(OltpTransaction()) for _ in range(20)
        ]

    assert routes(5) == routes(5)
    assert routes(5) != routes(6)


def test_affinity_router_requires_oltp_pes():
    with pytest.raises(ValueError):
        AffinityRouter(oltp_pe_ids=[], all_pe_ids=[0, 1])


def test_round_robin_router_requires_pes():
    with pytest.raises(ValueError):
        RoundRobinRouter([])


def test_routers_stamp_coordinator_pe():
    query = JoinQuery()
    RandomRouter([3], seed=0).route(query)
    assert query.coordinator_pe == 3
    query2 = JoinQuery()
    RoundRobinRouter([7]).route(query2)
    assert query2.coordinator_pe == 7
    txn = OltpTransaction(home_pe=1)
    AffinityRouter(oltp_pe_ids=[0, 1], all_pe_ids=[0, 1, 2]).route(txn)
    assert txn.coordinator_pe == 1


def test_affinity_router_fallback_covers_all_pes():
    router = AffinityRouter(oltp_pe_ids=[0], all_pe_ids=list(range(4)), seed=2)
    seen = {router.route(JoinQuery()) for _ in range(300)}
    assert seen == {0, 1, 2, 3}
