"""Tests for strict 2PL locking and central deadlock detection."""


from repro.engine import DeadlockAbort, DeadlockDetector, LockManager, LockMode
from repro.sim import Environment


def test_shared_locks_are_compatible():
    env = Environment()
    locks = LockManager(env)
    done = []

    def reader(txn):
        yield locks.acquire(txn, "page1", LockMode.SHARED)
        done.append((txn, env.now))
        yield env.timeout(5)
        locks.release_all(txn)

    env.process(reader(1))
    env.process(reader(2))
    env.run()
    assert [t for _, t in done] == [0, 0]


def test_exclusive_lock_blocks_and_is_granted_on_release():
    env = Environment()
    locks = LockManager(env)
    done = []

    def writer(txn, delay, hold):
        yield env.timeout(delay)
        yield locks.acquire(txn, "page1", LockMode.EXCLUSIVE)
        done.append((txn, env.now))
        yield env.timeout(hold)
        locks.release_all(txn)

    env.process(writer(1, 0, 10))
    env.process(writer(2, 1, 1))
    env.run()
    assert done == [(1, 0), (2, 10)]
    assert locks.waited == 1


def test_lock_upgrade_same_transaction():
    env = Environment()
    locks = LockManager(env)
    done = []

    def proc():
        yield locks.acquire(7, "page1", LockMode.SHARED)
        yield locks.acquire(7, "page1", LockMode.EXCLUSIVE)
        done.append(env.now)
        locks.release_all(7)

    env.process(proc())
    env.run()
    assert done == [0]
    assert not locks.holds(7, "page1")


def test_reacquire_held_lock_is_immediate():
    env = Environment()
    locks = LockManager(env)
    done = []

    def proc():
        yield locks.acquire(1, "r", LockMode.EXCLUSIVE)
        yield locks.acquire(1, "r", LockMode.SHARED)
        done.append(env.now)
        locks.release_all(1)

    env.process(proc())
    env.run()
    assert done == [0]


def test_fifo_fairness_no_queue_jumping():
    env = Environment()
    locks = LockManager(env)
    order = []

    def holder():
        yield locks.acquire(1, "r", LockMode.EXCLUSIVE)
        yield env.timeout(10)
        locks.release_all(1)

    def exclusive_waiter():
        yield env.timeout(1)
        yield locks.acquire(2, "r", LockMode.EXCLUSIVE)
        order.append(("x", env.now))
        yield env.timeout(5)
        locks.release_all(2)

    def shared_latecomer():
        yield env.timeout(2)
        yield locks.acquire(3, "r", LockMode.SHARED)
        order.append(("s", env.now))
        locks.release_all(3)

    env.process(holder())
    env.process(exclusive_waiter())
    env.process(shared_latecomer())
    env.run()
    assert order == [("x", 10), ("s", 15)]


def test_waiting_count_and_held_count():
    env = Environment()
    locks = LockManager(env)

    def holder():
        yield locks.acquire(1, "r", LockMode.EXCLUSIVE)
        yield env.timeout(10)
        locks.release_all(1)

    def waiter():
        yield env.timeout(1)
        yield locks.acquire(2, "r", LockMode.EXCLUSIVE)
        locks.release_all(2)

    env.process(holder())
    env.process(waiter())
    env.run(until=5)
    assert locks.held_count() == 1
    assert locks.waiting_count() == 1
    env.run()
    assert locks.waiting_count() == 0


# -- deadlock detection -------------------------------------------------------------
def test_find_cycle_simple():
    env = Environment()
    detector = DeadlockDetector(env)
    detector.add_wait(1, 2)
    detector.add_wait(2, 1)
    cycle = detector.find_cycle()
    assert cycle is not None
    assert set(cycle) == {1, 2}


def test_no_cycle_in_chain():
    env = Environment()
    detector = DeadlockDetector(env)
    detector.add_wait(1, 2)
    detector.add_wait(2, 3)
    assert detector.find_cycle() is None


def test_detect_and_resolve_picks_youngest_victim():
    env = Environment()
    aborted = []
    detector = DeadlockDetector(env, abort_callback=lambda txn: aborted.append(txn) or True)
    detector.add_wait(10, 20)
    detector.add_wait(20, 10)
    victims = detector.detect_and_resolve()
    assert victims == [20]
    assert aborted == [20]
    assert detector.cycles_found == 1
    assert detector.find_cycle() is None


def test_self_wait_is_ignored():
    env = Environment()
    detector = DeadlockDetector(env)
    detector.add_wait(1, 1)
    assert detector.edge_count == 0


def test_remove_transaction_clears_edges():
    env = Environment()
    detector = DeadlockDetector(env)
    detector.add_wait(1, 2)
    detector.add_wait(3, 1)
    detector.remove_transaction(1)
    assert detector.edge_count == 0


def test_end_to_end_deadlock_resolution():
    """Two transactions locking two pages in opposite order deadlock; the
    detector aborts the younger one and the older one finishes."""
    env = Environment()
    committed = []
    aborted = []
    locks = LockManager(env)

    def abort(txn_id):
        return locks.abort_waiter(txn_id)

    detector = DeadlockDetector(env, detection_interval=1.0, abort_callback=abort)
    locks.deadlock_detector = detector
    detector.start()

    def txn(txn_id, first, second):
        try:
            yield locks.acquire(txn_id, first, LockMode.EXCLUSIVE)
            yield env.timeout(0.5)
            yield locks.acquire(txn_id, second, LockMode.EXCLUSIVE)
            yield env.timeout(0.1)
            committed.append(txn_id)
            locks.release_all(txn_id)
        except DeadlockAbort:
            aborted.append(txn_id)

    env.process(txn(1, "pageA", "pageB"))
    env.process(txn(2, "pageB", "pageA"))
    env.run(until=20)
    assert aborted == [2]
    assert committed == [1]
    assert locks.aborts == 1


def test_periodic_detection_runs_without_cycles():
    env = Environment()
    detector = DeadlockDetector(env, detection_interval=0.5)
    detector.start()
    detector.start()  # idempotent
    env.run(until=3)
    assert detector.cycles_found == 0
