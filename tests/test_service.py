"""Coordinator service tests: sharding, stitching, /metrics, submissions."""

import json
import urllib.error
import urllib.request

import pytest

from repro.metrics import MetricFamily, render_families, validate_exposition
from repro.runner import (
    DistributedRunner,
    ParallelRunner,
    PointSpec,
    Worker,
    shard_timeline_point,
)
from repro.runner.backends import HttpBackend
from repro.service import Coordinator


def timeline_point(**overrides) -> PointSpec:
    fields = dict(figure="f", series="s", x=10, kind="timeline",
                  scenario="homogeneous", num_pe=10, seed=42,
                  strategy="OPT-IO-CPU", measured_joins=None,
                  max_simulated_time=30.0, timeline_window=5.0)
    fields.update(overrides)
    return PointSpec(**fields)


def point_payload(point: PointSpec) -> dict:
    from dataclasses import asdict

    return asdict(point)


@pytest.fixture
def coordinator():
    coord = Coordinator(lease_seconds=30.0, shard_windows=2)
    coord.start()
    yield coord
    coord.stop()


def scrape(coord: Coordinator) -> str:
    with urllib.request.urlopen(coord.url + "/metrics") as response:
        assert response.headers["Content-Type"].startswith("text/plain")
        return response.read().decode("utf-8")


# -- prometheus renderer ----------------------------------------------------------
def test_metric_family_renders_exposition_format():
    family = MetricFamily("demo_gauge", "gauge", "A demo.")
    family.add({}, 1)
    family.add({"label": 'quote " slash \\ newline \n'}, 2.5)
    family.add({"nan": "x"}, float("nan"))
    text = render_families([family])
    assert "# HELP demo_gauge A demo.\n" in text
    assert "# TYPE demo_gauge gauge\n" in text
    assert 'demo_gauge{label="quote \\" slash \\\\ newline \\n"} 2.5' in text
    assert "demo_gauge{nan=\"x\"} NaN" in text
    parsed = validate_exposition(text)
    assert parsed["demo_gauge"]["type"] == "gauge"
    assert parsed["demo_gauge"]["samples"] == 3


def test_validate_exposition_rejects_malformed_text():
    with pytest.raises(ValueError):
        validate_exposition("demo 1\n")  # sample without a TYPE announcement
    with pytest.raises(ValueError):
        validate_exposition("# TYPE demo bogus\ndemo 1\n")
    with pytest.raises(ValueError):
        validate_exposition("# TYPE demo gauge\ndemo not-a-number\n")


# -- timeline sharding ------------------------------------------------------------
def test_shard_timeline_point_prefixes_and_identity():
    point = timeline_point()  # 6 windows of 5 s
    shards = shard_timeline_point(point, 2)
    assert [shard.max_simulated_time for shard in shards] == [10.0, 20.0, 30.0]
    assert shards[-1] == point  # the final shard IS the original task
    # Short points and non-timeline points pass through unsharded.
    assert shard_timeline_point(timeline_point(max_simulated_time=10.0), 2) == (
        timeline_point(max_simulated_time=10.0),
    )
    assert shard_timeline_point(timeline_point(kind="multi"), 2) == (
        timeline_point(kind="multi"),
    )
    assert shard_timeline_point(point, 0) == (point,)


def test_shard_prefix_runs_equal_full_run_window_prefixes():
    point = timeline_point()
    shards = shard_timeline_point(point, 2)
    full = ParallelRunner(workers=1).run_points([point])[0].to_dict()
    prefix = ParallelRunner(workers=1).run_points([shards[0]])[0].to_dict()
    full_windows = full["timeline"]["windows"]
    prefix_windows = prefix["timeline"]["windows"]
    assert len(prefix_windows) == 2
    assert prefix_windows == full_windows[: len(prefix_windows)]


# -- sweep submission -------------------------------------------------------------
def test_submit_sweep_by_scenario_name(coordinator):
    response = coordinator.submit_sweep(
        {
            "scenario": "figure5",
            "kwargs": {
                "system_sizes": [10],
                "strategies": ["OPT-IO-CPU"],
                "measured_joins": 5,
                "max_simulated_time": 20,
                "include_single_user": False,
            },
        }
    )
    assert response["summary"]["enqueued"] == 1
    assert len(response["task_ids"]) == 1
    assert coordinator.backend.task_ids() == response["task_ids"]


def test_submit_sweep_rejects_garbage(coordinator):
    with pytest.raises(ValueError):
        coordinator.submit_sweep({})
    with pytest.raises(ValueError):
        coordinator.submit_sweep({"points": "nope"})


def test_submit_sweep_rejects_garbage_over_http(coordinator):
    request = urllib.request.Request(
        coordinator.url + "/sweeps",
        data=b'{"points": "nope"}',
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 400


# -- sharded drain: stitching + streaming metrics ---------------------------------
def test_sharded_sweep_streams_windows_and_stitches_identically(coordinator):
    point = timeline_point()
    shards = shard_timeline_point(point, 2)
    backend = HttpBackend(coordinator.url)
    submission = backend._call("POST", "/sweeps", {"points": [point_payload(point)]})
    task_id = submission["task_ids"][0]
    shard_ids = submission["shards"][task_id]
    assert len(shard_ids) == 3 and shard_ids[-1] == task_id

    # Complete only the first (shortest-prefix) shard: its windows must show
    # up in /metrics and /timelines while the full point is still pending.
    results = {s: ParallelRunner(workers=1).run_points([s])[0] for s in shards}
    first = shards[0]
    assert backend.try_claim(shard_ids[0], "w1")
    backend.complete(shard_ids[0], first, results[first], "w1")

    text = scrape(coordinator)
    families = validate_exposition(text)
    assert families["repro_window_join_throughput"]["samples"] == 2
    assert 'figure="f"' in text and 'series="s"' in text and 'window="0"' in text
    assert not backend.is_done(task_id)
    stitched = coordinator.stitched_windows(task_id)
    assert len(stitched) == 2

    # Drain the rest; the stitched timeline must equal the unsharded run's.
    for shard, shard_id in zip(shards[1:], shard_ids[1:]):
        assert backend.try_claim(shard_id, "w1")
        backend.complete(shard_id, shard, results[shard], "w1")
    assert backend.is_done(task_id)
    # Stored payloads went through JSON, which turns tuples into lists --
    # normalise the local reference the same way before comparing.
    full_windows = json.loads(json.dumps(results[point].to_dict()))["timeline"]["windows"]
    assert coordinator.stitched_windows(task_id) == full_windows

    # The final shard is the original task, so the stored result is the
    # unsharded result itself -- not a reconstruction.
    assert backend.load_result(point) == results[point]

    text = scrape(coordinator)
    families = validate_exposition(text)
    assert families["repro_window_join_throughput"]["samples"] == len(full_windows)
    with urllib.request.urlopen(coordinator.url + "/timelines") as response:
        view = json.loads(response.read())["timelines"]
    assert view[0]["done"] is True
    assert view[0]["windows"] == full_windows


def test_metrics_track_queue_states_and_workers(coordinator):
    point = timeline_point(max_simulated_time=10.0)  # unsharded
    backend = HttpBackend(coordinator.url)
    backend.enqueue([point])
    families = validate_exposition(scrape(coordinator))
    for required in (
        "repro_coordinator_uptime_seconds",
        "repro_queue_tasks",
        "repro_queue_tasks_total",
        "repro_sweeps_submitted_total",
        "repro_results_received_total",
        "repro_windows_streamed_total",
    ):
        assert required in families, required
    text = scrape(coordinator)
    assert 'repro_queue_tasks{state="pending"} 1' in text
    assert backend.claim_next("w1") is not None
    text = scrape(coordinator)
    assert 'repro_queue_tasks{state="running"} 1' in text
    assert 'repro_worker_up{worker="w1"} 1' in text


def test_distributed_runner_over_http_matches_local_run(coordinator):
    point = timeline_point(max_simulated_time=10.0)
    local = ParallelRunner(workers=1).run_points([point])[0]
    runner = DistributedRunner(coordinator.url, timeout=120.0, poll_interval=0.02)
    runner.dispatch([point])
    Worker(runner.queue, worker_id="w1", poll_interval=0.02).run()
    assert runner.run_points([point])[0] == local
