"""Tests for the command-line interface."""

import csv
import json

import pytest

from repro.cli import build_parser, main


def test_list_strategies(capsys):
    assert main(["list-strategies"]) == 0
    output = capsys.readouterr().out
    assert "OPT-IO-CPU" in output
    assert "pmu_cpu+LUM" in output


def test_parameters_table(capsys):
    assert main(["parameters"]) == 0
    output = capsys.readouterr().out
    assert "20 MIPS" in output


def test_simulate_single_user(capsys):
    code = main([
        "simulate", "--pe", "10", "--strategy", "psu_opt+RANDOM",
        "--joins", "10", "--single-user",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "single-user" in output
    assert "join_rt_ms" in output


def test_simulate_multi_user_with_oltp(capsys):
    code = main([
        "simulate", "--pe", "10", "--strategy", "OPT-IO-CPU",
        "--joins", "5", "--oltp", "A", "--time-limit", "30",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "OLTP" in output
    assert "multi-user" in output


def test_experiment_figure1(capsys):
    code = main(["experiment", "figure1", "--joins", "10", "--sizes", "1", "8"])
    assert code == 0
    output = capsys.readouterr().out
    assert "Fig. 1a" in output


def test_experiment_figure6_tiny(capsys):
    code = main(["experiment", "figure6", "--joins", "5", "--sizes", "10", "--time-limit", "30"])
    assert code == 0
    output = capsys.readouterr().out
    assert "Fig. 6" in output
    assert "OPT-IO-CPU" in output


def test_experiment_workers_flag_parallel_run(capsys):
    code = main([
        "experiment", "figure6", "--joins", "5", "--sizes", "10",
        "--time-limit", "20", "--workers", "2", "--no-cache",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "Fig. 6" in output
    assert "OPT-IO-CPU" in output


def test_experiment_uses_result_cache(tmp_path, capsys):
    argv = [
        "experiment", "figure6", "--joins", "5", "--sizes", "10",
        "--time-limit", "20", "--cache-dir", str(tmp_path),
    ]
    assert main(argv) == 0
    first = capsys.readouterr()
    assert "0 hit(s)" in first.err
    assert main(argv) == 0
    second = capsys.readouterr()
    assert "0 miss(es)" in second.err
    assert first.out == second.out


def test_sweep_adhoc_scenario_and_cache(tmp_path, capsys):
    argv = [
        "sweep", "--strategies", "OPT-IO-CPU", "psu_opt+RANDOM",
        "--sizes", "10", "20", "--rates", "0.2", "0.3",
        "--joins", "5", "--time-limit", "20", "--cache-dir", str(tmp_path),
    ]
    assert main(argv) == 0
    captured = capsys.readouterr()
    assert "Ad-hoc sweep" in captured.out
    assert "OPT-IO-CPU @0.2 QPS/PE" in captured.out
    assert "0 hit(s)" in captured.err
    # A repeated run is served entirely from the result cache.
    assert main(argv) == 0
    repeated = capsys.readouterr()
    assert "8 hit(s), 0 miss(es)" in repeated.err
    assert repeated.out == captured.out


def test_sweep_config_override_and_selectivity_axis(capsys):
    code = main([
        "sweep", "--strategies", "OPT-IO-CPU", "--sizes", "10",
        "--selectivities", "0.005", "0.01", "--joins", "5",
        "--time-limit", "20", "--set", "buffer.buffer_pages=25", "--no-cache",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "selectivity %" in output
    assert "0.5" in output  # 0.005 -> 0.5 %


def test_experiment_replicates_and_csv_export(tmp_path, capsys):
    out = tmp_path / "fig6.csv"
    code = main([
        "experiment", "figure6", "--joins", "5", "--sizes", "10",
        "--time-limit", "20", "--replicates", "2", "--workers", "2",
        "--no-cache", "--export", "csv", "--output", str(out),
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "mean ± 95% CI" in captured.out
    assert "[export] wrote" in captured.err
    with out.open() as handle:
        rows = list(csv.DictReader(handle))
    replicate_rows = [r for r in rows if r["row_type"] == "replicate"]
    aggregate_rows = [r for r in rows if r["row_type"] == "aggregate"]
    # 5 multi-user strategies + the single-user baseline = 6 series.
    assert len(replicate_rows) == 12
    assert len(aggregate_rows) == 6
    assert {r["replicate"] for r in replicate_rows} == {"0", "1"}
    assert all(r["n"] == "2" for r in aggregate_rows)


def test_export_default_output_name(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main([
        "experiment", "figure1", "--joins", "10", "--sizes", "1", "8",
        "--export", "json", "--no-cache",
    ])
    assert code == 0
    rows = json.loads((tmp_path / "figure1.json").read_text())
    assert rows and all(row["row_type"] == "replicate" for row in rows)
    assert {row["series"] for row in rows} == {"analytic model", "simulation"}


def test_sweep_replicates_render_ci(capsys):
    code = main([
        "sweep", "--strategies", "OPT-IO-CPU", "--sizes", "10",
        "--joins", "5", "--time-limit", "20", "--replicates", "2", "--no-cache",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "±" in output


def test_parser_rejects_non_positive_replicates():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "figure6", "--replicates", "0"])


def test_output_without_export_is_rejected():
    with pytest.raises(SystemExit, match="--output requires --export"):
        main(["experiment", "figure6", "--joins", "5", "--sizes", "10",
              "--output", "results.csv", "--no-cache"])


def test_parser_rejects_unknown_figure():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["experiment", "figure42"])


def test_parser_rejects_bad_override():
    with pytest.raises(SystemExit):
        main(["sweep", "--strategies", "OPT-IO-CPU", "--sizes", "10",
              "--set", "buffer.buffer_pages", "--no-cache"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# -- dynamic workloads / timeline sweeps ------------------------------------------
def test_sweep_arrival_renders_timeline_table(capsys):
    code = main([
        "sweep", "--arrival", "step", "--arrival-param", "surge_factor=2",
        "--arrival-param", "surge_start=4", "--arrival-param", "surge_end=8",
        "--strategies", "OPT-IO-CPU", "--sizes", "4",
        "--time-limit", "10", "--timeline-window", "2", "--no-cache",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "[step]" in output
    assert "per window" in output
    assert "[   0.0,   2.0)" in output


def test_sweep_arrival_exports_window_rows(tmp_path, capsys):
    out = tmp_path / "dyn.csv"
    # Bursty profile with a non-zero off rate and short cycle, so the run
    # actually completes joins inside 8 s (zero-arrival output would make
    # the row checks below vacuous).
    code = main([
        "sweep", "--arrival", "mmpp", "--arrival-param", "burst_factor=1.5",
        "--arrival-param", "on_fraction=0.5", "--arrival-param", "cycle=4",
        "--strategies", "OPT-IO-CPU", "--rates", "0.5",
        "--sizes", "8", "--time-limit", "8", "--timeline-window", "2",
        "--no-cache", "--export", "csv", "--output", str(out),
    ])
    assert code == 0
    with out.open() as handle:
        rows = list(csv.DictReader(handle))
    window_rows = [r for r in rows if r["row_type"] == "window"]
    assert len(window_rows) == 4
    assert all(r["t_end"] for r in window_rows)
    assert [r["window_index"] for r in window_rows] == ["0", "1", "2", "3"]
    assert sum(float(r["joins_completed"]) for r in window_rows) > 0


def test_experiment_dynamic_tiny(capsys):
    code = main([
        "experiment", "dynamic", "--sizes", "4", "--time-limit", "10",
        "--no-cache", "--workers", "2",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "Dynamic workload" in output
    assert "join_rt_mean per window" in output
    assert "psu_noIO+RANDOM" in output


def test_sweep_perturb_replicates(capsys):
    code = main([
        "sweep", "--strategies", "OPT-IO-CPU", "--sizes", "4",
        "--rates", "0.25", "--joins", "5", "--time-limit", "10",
        "--replicates", "2", "--perturb", "arrival_rate=0.1", "--no-cache",
    ])
    assert code == 0
    assert "mean ± 95% CI" in capsys.readouterr().out


def test_sweep_perturb_without_rates_is_rejected():
    with pytest.raises(SystemExit, match="invalid sweep"):
        main([
            "sweep", "--strategies", "OPT-IO-CPU", "--sizes", "4",
            "--replicates", "2", "--perturb", "arrival_rate=0.1", "--no-cache",
        ])


def test_sweep_bad_arrival_param_is_rejected():
    with pytest.raises(SystemExit, match="expected a number"):
        main([
            "sweep", "--arrival", "step", "--arrival-param", "surge_factor=big",
            "--sizes", "4", "--no-cache",
        ])


def test_parser_rejects_unknown_arrival():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["sweep", "--arrival", "weibull"])


def test_sweep_unknown_arrival_param_is_rejected_eagerly():
    with pytest.raises(SystemExit, match="invalid --arrival-param"):
        main([
            "sweep", "--arrival", "step", "--arrival-param", "surge=3",
            "--sizes", "4", "--no-cache",
        ])


def test_sweep_arrival_param_requires_arrival():
    with pytest.raises(SystemExit, match="invalid sweep: arrival_params"):
        main([
            "sweep", "--arrival-param", "surge_factor=3", "--sizes", "4", "--no-cache",
        ])


def test_sweep_trace_rejects_non_file_arrival_params():
    with pytest.raises(SystemExit, match="only the file=PATH parameter"):
        main([
            "sweep", "--arrival", "trace", "--arrival-param", "surge_factor=3",
            "--sizes", "4", "--no-cache",
        ])


def test_sweep_trace_rejects_missing_file_eagerly(tmp_path):
    with pytest.raises(SystemExit, match="invalid --arrival-param file"):
        main([
            "sweep", "--arrival", "trace",
            "--arrival-param", f"file={tmp_path / 'missing.csv'}",
            "--sizes", "4", "--no-cache",
        ])


def test_sweep_non_positive_timeline_duration_is_rejected():
    with pytest.raises(SystemExit, match="positive run duration"):
        main([
            "sweep", "--arrival", "step", "--strategies", "OPT-IO-CPU",
            "--sizes", "4", "--time-limit", "0", "--no-cache",
        ])


# -- distributed sweeps (dispatch / worker / status) ------------------------------
DISTRIBUTED_ARGS = ["figure5", "--sizes", "10", "--joins", "5", "--time-limit", "20"]


def test_dispatch_worker_status_drain(tmp_path, capsys):
    queue_dir = str(tmp_path / "queue")
    assert main(["dispatch", *DISTRIBUTED_ARGS, "--queue-dir", queue_dir]) == 0
    out = capsys.readouterr().out
    assert "7 task(s) enqueued" in out  # 6 strategies + single-user baseline
    assert main(["worker", "--queue-dir", queue_dir, "--max-tasks", "7"]) == 0
    assert "7 executed" in capsys.readouterr().out
    assert main(["status", "--queue-dir", queue_dir, "--json"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["all_done"] and status["total"] == 7 and status["failed"] == 0
    # Re-dispatch of the finished sweep enqueues nothing.
    assert main(["dispatch", *DISTRIBUTED_ARGS, "--queue-dir", queue_dir]) == 0
    assert "7 already done" in capsys.readouterr().out


def test_distributed_experiment_export_matches_local_run(tmp_path, capsys):
    queue_dir = str(tmp_path / "queue")
    assert main(["dispatch", *DISTRIBUTED_ARGS, "--replicates", "2",
                 "--queue-dir", queue_dir]) == 0
    assert main(["worker", "--queue-dir", queue_dir]) == 0
    capsys.readouterr()
    dist_csv = tmp_path / "dist.csv"
    local_csv = tmp_path / "local.csv"
    assert main(["experiment", *DISTRIBUTED_ARGS, "--replicates", "2",
                 "--distributed", "--queue-dir", queue_dir, "--queue-timeout", "60",
                 "--export", "csv", "--output", str(dist_csv)]) == 0
    dist_table = capsys.readouterr().out
    assert main(["experiment", *DISTRIBUTED_ARGS, "--replicates", "2",
                 "--workers", "2", "--no-cache",
                 "--export", "csv", "--output", str(local_csv)]) == 0
    local_table = capsys.readouterr().out
    assert dist_table == local_table
    assert dist_csv.read_bytes() == local_csv.read_bytes()  # byte-identical export


def test_distributed_requires_queue_dir():
    with pytest.raises(SystemExit, match="requires --queue-dir"):
        main(["experiment", "figure6", "--distributed"])


def test_distributed_experiment_times_out_without_workers(tmp_path):
    with pytest.raises(SystemExit, match="timed out"):
        main(["experiment", *DISTRIBUTED_ARGS, "--distributed",
              "--queue-dir", str(tmp_path / "queue"), "--queue-timeout", "0.2"])


def test_sweep_fault_token_errors_are_strict_and_name_the_token():
    # Unknown key, duplicate key and out-of-range values all exit with a
    # message carrying the offending --fault token verbatim.
    for token, fragment in [
        ("crash@5:wat=1", "wat=1"),
        ("crash@5:pe=1:pe=2", "duplicate fault option 'pe'"),
        ("crash@-5:pe=1", "time must be >= 0"),
        ("crash@5:pe=1:duration=-1", "duration must be > 0"),
        ("crash@5:pe=1:drain=true", "drain only applies to pe_remove"),
    ]:
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--strategies", "OPT-IO-CPU", "--sizes", "8",
                  "--joins", "2", "--fault", token])
        message = str(excinfo.value)
        assert f"invalid --fault {token!r}" in message
        assert fragment in message
