"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_strategies(capsys):
    assert main(["list-strategies"]) == 0
    output = capsys.readouterr().out
    assert "OPT-IO-CPU" in output
    assert "pmu_cpu+LUM" in output


def test_parameters_table(capsys):
    assert main(["parameters"]) == 0
    output = capsys.readouterr().out
    assert "20 MIPS" in output


def test_simulate_single_user(capsys):
    code = main([
        "simulate", "--pe", "10", "--strategy", "psu_opt+RANDOM",
        "--joins", "10", "--single-user",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "single-user" in output
    assert "join_rt_ms" in output


def test_simulate_multi_user_with_oltp(capsys):
    code = main([
        "simulate", "--pe", "10", "--strategy", "OPT-IO-CPU",
        "--joins", "5", "--oltp", "A", "--time-limit", "30",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "OLTP" in output
    assert "multi-user" in output


def test_experiment_figure1(capsys):
    code = main(["experiment", "figure1", "--joins", "10", "--sizes", "1", "8"])
    assert code == 0
    output = capsys.readouterr().out
    assert "Fig. 1a" in output


def test_experiment_figure6_tiny(capsys):
    code = main(["experiment", "figure6", "--joins", "5", "--sizes", "10", "--time-limit", "30"])
    assert code == 0
    output = capsys.readouterr().out
    assert "Fig. 6" in output
    assert "OPT-IO-CPU" in output


def test_parser_rejects_unknown_figure():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["experiment", "figure42"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
