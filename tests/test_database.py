"""Tests for relations, fragments, indices, declustering and the catalog."""

import pytest
from hypothesis import given, strategies as st

from repro.config import OltpConfig, RelationConfig, SystemConfig
from repro.database import BTreeIndex, Catalog, Fragment, decluster, split_evenly


# -- split_evenly -----------------------------------------------------------
def test_split_evenly_exact():
    assert split_evenly(10, 5) == [2, 2, 2, 2, 2]


def test_split_evenly_remainder_goes_first():
    assert split_evenly(11, 3) == [4, 4, 3]


def test_split_evenly_rejects_zero_parts():
    with pytest.raises(ValueError):
        split_evenly(10, 0)


@given(st.integers(min_value=0, max_value=10_000_000), st.integers(min_value=1, max_value=200))
def test_split_evenly_properties(total, parts):
    shares = split_evenly(total, parts)
    assert sum(shares) == total
    assert len(shares) == parts
    assert max(shares) - min(shares) <= 1


# -- fragments ---------------------------------------------------------------
def test_fragment_pages_and_matching():
    frag = Fragment(relation_name="A", pe_id=0, num_tuples=1000, blocking_factor=20)
    assert frag.pages == 50
    assert frag.matching_tuples(0.01) == 10
    assert frag.matching_pages(0.01) == 1
    assert frag.matching_pages(0.0) == 0


def test_fragment_selectivity_validation():
    frag = Fragment(relation_name="A", pe_id=0, num_tuples=1000, blocking_factor=20)
    with pytest.raises(ValueError):
        frag.matching_tuples(1.5)


# -- declustering -------------------------------------------------------------
def test_decluster_uniform_distribution():
    config = RelationConfig(name="A", num_tuples=250_000, declustering_fraction=0.2)
    relation = decluster(config, pe_ids=list(range(8)), disks_per_pe=10)
    assert len(relation.fragments) == 8
    assert relation.total_fragment_tuples() == 250_000
    sizes = [frag.num_tuples for frag in relation.fragments.values()]
    assert max(sizes) - min(sizes) <= 1
    assert all(len(frag.disk_ids) == 10 for frag in relation.fragments.values())


def test_decluster_requires_nodes():
    config = RelationConfig(name="A", num_tuples=100)
    with pytest.raises(ValueError):
        decluster(config, pe_ids=[])


def test_relation_rejects_duplicate_fragment():
    config = RelationConfig(name="A", num_tuples=100)
    relation = decluster(config, pe_ids=[0, 1])
    with pytest.raises(ValueError):
        relation.add_fragment(
            Fragment(relation_name="A", pe_id=0, num_tuples=10, blocking_factor=20)
        )


def test_relation_rejects_foreign_fragment():
    config = RelationConfig(name="A", num_tuples=100)
    relation = decluster(config, pe_ids=[0])
    with pytest.raises(ValueError):
        relation.add_fragment(
            Fragment(relation_name="B", pe_id=5, num_tuples=10, blocking_factor=20)
        )


def test_relation_matching_pages_paper_values():
    """The inner relation at 1 % selectivity occupies 125 pages (paper §3.1)."""
    config = RelationConfig(name="A", num_tuples=250_000, blocking_factor=20)
    relation = decluster(config, pe_ids=list(range(4)))
    assert relation.matching_tuples(0.01) == 2_500
    assert relation.matching_pages(0.01) == 125
    assert relation.matching_pages(0.001) == 13
    assert relation.matching_pages(0.05) == 625


# -- B+-tree index -------------------------------------------------------------
def test_btree_height_grows_with_entries():
    small = BTreeIndex(relation_name="A", num_entries=100)
    large = BTreeIndex(relation_name="A", num_entries=1_000_000)
    assert small.height <= large.height
    assert small.height >= 1


def test_btree_height_known_values():
    index = BTreeIndex(relation_name="A", num_entries=200, entries_per_page=200)
    assert index.height == 1
    index = BTreeIndex(relation_name="A", num_entries=40_000, entries_per_page=200)
    assert index.height == 2
    index = BTreeIndex(relation_name="A", num_entries=250_000, entries_per_page=200)
    assert index.height == 3


def test_btree_range_scan_pages():
    index = BTreeIndex(relation_name="A", clustered=True, num_entries=250_000)
    assert index.index_pages_for_range(0.0) == index.height
    assert index.index_pages_for_range(0.01) >= index.height
    with pytest.raises(ValueError):
        index.index_pages_for_range(2.0)


def test_btree_unclustered_data_accesses():
    clustered = BTreeIndex(relation_name="A", clustered=True, num_entries=10_000)
    unclustered = BTreeIndex(relation_name="A", clustered=False, num_entries=10_000)
    assert clustered.data_page_accesses_for_tuples(100, data_pages=50) == 50
    assert unclustered.data_page_accesses_for_tuples(100, data_pages=50) == 100
    assert clustered.data_page_accesses_for_tuples(0, data_pages=50) == 0


# -- catalog -------------------------------------------------------------------
def test_catalog_from_config_contains_a_and_b():
    config = SystemConfig(num_pe=40)
    catalog = Catalog.from_config(config)
    assert "A" in catalog
    assert "B" in catalog
    assert set(catalog.nodes_of("A")) == set(config.a_node_ids)
    assert set(catalog.nodes_of("B")) == set(config.b_node_ids)
    # Disjoint allocation (paper §5.1).
    assert set(catalog.nodes_of("A")).isdisjoint(catalog.nodes_of("B"))


def test_catalog_with_oltp_adds_account_relation():
    config = SystemConfig(num_pe=40, oltp=OltpConfig(placement="B"))
    catalog = Catalog.from_config(config)
    assert "ACCT" in catalog
    assert set(catalog.nodes_of("ACCT")) == set(config.b_node_ids)


def test_catalog_unknown_relation_message():
    catalog = Catalog.from_config(SystemConfig(num_pe=10))
    with pytest.raises(KeyError, match="unknown relation"):
        catalog.relation("Z")


def test_catalog_fragments_on_node():
    config = SystemConfig(num_pe=10)
    catalog = Catalog.from_config(config)
    a_node = config.a_node_ids[0]
    fragments = catalog.fragments_on(a_node)
    assert any(frag.relation_name == "A" for frag in fragments)
    assert not any(frag.relation_name == "B" for frag in fragments)


def test_catalog_add_duplicate_rejected():
    config = SystemConfig(num_pe=10)
    catalog = Catalog.from_config(config)
    with pytest.raises(ValueError):
        catalog.add(catalog.relation("A"))


@given(st.integers(min_value=10, max_value=80))
def test_catalog_total_tuples_preserved(num_pe):
    config = SystemConfig(num_pe=num_pe)
    catalog = Catalog.from_config(config)
    assert catalog.relation("A").total_fragment_tuples() == 250_000
    assert catalog.relation("B").total_fragment_tuples() == 1_000_000
