"""Tests for the declarative scenario engine and the parallel runner."""

import dataclasses

import pytest

from repro.experiments import figure1, figure7
from repro.runner import (
    ParallelRunner,
    PointSpec,
    ResultCache,
    ScenarioSpec,
    Sweep,
    available_scenarios,
    build_scenario,
    derive_seed,
    execute_point,
)
from repro.runner.runner import apply_config_overrides, build_config
from repro.simulation.results import SimulationResult


def tiny_spec(strategies=("OPT-IO-CPU", "psu_opt+RANDOM"), **kwargs) -> ScenarioSpec:
    return ScenarioSpec(
        name="tiny",
        title="tiny sweep",
        x_label="# PE",
        sweeps=(
            Sweep(kind="multi", scenario="homogeneous", strategies=strategies,
                  system_sizes=(10,)),
        ),
        measured_joins=5,
        max_simulated_time=20.0,
        **kwargs,
    )


# -- spec model and expansion ------------------------------------------------------
def test_registry_contains_all_figures():
    names = available_scenarios()
    for name in ("figure1", "figure5", "figure6", "figure7", "figure8",
                 "figure9a", "figure9b", "parameters"):
        assert name in names


def test_expansion_matches_legacy_loop_order():
    spec = figure7.build_spec(system_sizes=(20, 30), arrival_rates=(0.05, 0.025))
    points = spec.points()
    multi = [p for p in points if p.kind == "multi"]
    # size outer, rate next, strategy inner -- the legacy figure loop order.
    assert [(p.num_pe, p.rate, p.strategy) for p in multi[:4]] == [
        (20, 0.05, "pmu_cpu+LUM"),
        (20, 0.05, "MIN-IO-SUOPT"),
        (20, 0.025, "pmu_cpu+LUM"),
        (20, 0.025, "MIN-IO-SUOPT"),
    ]
    assert multi[0].series == "pmu_cpu+LUM @0.05 QPS/PE"
    singles = [p for p in points if p.kind == "single"]
    assert {p.series for p in singles} == {
        "pmu_cpu+LUM single-user",
        "MIN-IO-SUOPT single-user",
    }


def test_expansion_skips_degrees_above_system_size():
    spec = figure1.build_spec(num_pe=8, degrees=(1, 4, 16), simulate=True)
    points = spec.points()
    assert {p.degree for p in points} == {1, 4}
    assert all(p.x in (1.0, 4.0) for p in points)


def test_sweep_validation_rejects_bad_axes():
    with pytest.raises(ValueError):
        Sweep(kind="multi", strategies=(), system_sizes=(10,))
    with pytest.raises(ValueError):
        Sweep(kind="multi", strategies=("X",), system_sizes=())
    with pytest.raises(ValueError):
        Sweep(kind="warp", strategies=("X",), system_sizes=(10,))
    with pytest.raises(ValueError):
        Sweep(kind="fixed-degree", system_sizes=(10,))


def test_sweep_validation_rejects_x_axis_without_axis_values():
    with pytest.raises(ValueError):
        Sweep(kind="multi", strategies=("X",), system_sizes=(10,), x_axis="rate")
    with pytest.raises(ValueError):
        Sweep(kind="multi", strategies=("X",), system_sizes=(10,), x_axis="selectivity_pct")
    with pytest.raises(ValueError):
        Sweep(kind="multi", strategies=("X",), system_sizes=(10,), x_axis="degree")


def test_expansion_resolves_env_run_limits_into_points(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_JOINS", "17")
    monkeypatch.setenv("REPRO_BENCH_TIME_LIMIT", "33.5")
    spec = tiny_spec()
    spec = dataclasses.replace(spec, measured_joins=None, max_simulated_time=None)
    point = spec.points()[0]
    assert point.measured_joins == 17
    assert point.max_simulated_time == 33.5
    # Different environment settings therefore produce different cache keys.
    cache = ResultCache("unused")
    key_17 = cache.key(point)
    monkeypatch.setenv("REPRO_BENCH_JOINS", "99")
    assert cache.key(spec.points()[0]) != key_17


def test_experiments_mapping_mirrors_registry():
    from repro.experiments import EXPERIMENTS

    assert set(EXPERIMENTS) == set(available_scenarios()) - {"parameters"}
    experiment = EXPERIMENTS["figure6"](system_sizes=(10,), strategies=("OPT-IO-CPU",),
                                        measured_joins=5, max_simulated_time=20,
                                        include_single_user=False)
    assert experiment.series_names() == ["OPT-IO-CPU"]


def test_derive_seed_is_stable_and_sensitive():
    assert derive_seed(42, "a", 1.0) == derive_seed(42, "a", 1.0)
    assert derive_seed(42, "a", 1.0) != derive_seed(42, "b", 1.0)
    assert derive_seed(42, "a", 1.0) != derive_seed(43, "a", 1.0)


def test_reseed_per_point_gives_distinct_deterministic_seeds():
    sweep = Sweep(kind="multi", scenario="homogeneous", strategies=("A", "B"),
                  system_sizes=(10, 20), reseed_per_point=True)
    spec = ScenarioSpec(name="s", title="s", x_label="x", sweeps=(sweep,), seed=7)
    seeds = [p.seed for p in spec.points()]
    assert len(set(seeds)) == 4
    assert seeds == [p.seed for p in spec.points()]  # stable across expansions


# -- config building ---------------------------------------------------------------
def test_apply_config_overrides_nested_paths():
    point = PointSpec(figure="f", series="s", x=1, kind="multi", scenario="homogeneous",
                      num_pe=10, seed=42,
                      config_overrides=(("buffer.buffer_pages", 25), ("seed", 9)))
    config = build_config(point)
    assert config.buffer.buffer_pages == 25
    assert config.seed == 9


def test_apply_config_overrides_rejects_unknown_field():
    config = build_config(PointSpec(figure="f", series="s", x=1, kind="multi",
                                    scenario="homogeneous", num_pe=10, seed=42))
    with pytest.raises(AttributeError):
        apply_config_overrides(config, [("buffer.no_such_field", 1)])
    with pytest.raises(AttributeError):
        apply_config_overrides(config, [("with_overrides", 1)])  # method, not a field
    with pytest.raises(AttributeError):
        apply_config_overrides(config, [("join_query", 5)])  # section, not a scalar


def test_build_config_scenarios_apply_axes():
    memory = build_config(PointSpec(figure="f", series="s", x=1, kind="multi",
                                    scenario="memory-bound", num_pe=20, seed=1,
                                    rate=0.025, selectivity=0.02))
    assert memory.buffer.buffer_pages == 5
    assert memory.disk.disks_per_pe == 1
    assert memory.join_query.arrival_rate_per_pe == 0.025
    assert memory.join_query.scan_selectivity == 0.02
    mixed = build_config(PointSpec(figure="f", series="s", x=1, kind="multi",
                                   scenario="mixed", num_pe=20, seed=1,
                                   oltp_placement="B"))
    assert mixed.oltp is not None and mixed.oltp.placement == "B"


# -- execution ---------------------------------------------------------------------
def test_execute_point_returns_picklable_dict():
    point = PointSpec(figure="f", series="s", x=10, kind="multi", scenario="homogeneous",
                      num_pe=10, seed=42, strategy="OPT-IO-CPU",
                      measured_joins=5, max_simulated_time=20.0)
    data = execute_point(dataclasses.asdict(point))
    assert isinstance(data, dict)
    result = SimulationResult.from_dict(data)
    assert result.joins_completed >= 5
    assert result.num_pe == 10


def test_serial_and_parallel_runs_are_identical():
    spec = tiny_spec()
    serial = ParallelRunner(workers=1).run(spec)
    parallel = ParallelRunner(workers=2).run(spec)
    assert [(p.series, p.x) for p in serial.points] == [
        (p.series, p.x) for p in parallel.points
    ]
    for left, right in zip(serial.points, parallel.points):
        assert left.result == right.result  # bit-identical across process fan-out


def test_cache_hit_returns_identical_result(tmp_path):
    spec = tiny_spec(strategies=("OPT-IO-CPU",))
    cache = ResultCache(tmp_path / "cache")
    first = ParallelRunner(workers=1, cache=cache).run(spec)
    assert cache.hits == 0
    warm = ResultCache(tmp_path / "cache")
    second = ParallelRunner(workers=1, cache=warm).run(spec)
    assert warm.hits == len(spec.points())
    for left, right in zip(first.points, second.points):
        assert left.result == right.result


def test_cache_key_ignores_presentation_fields(tmp_path):
    cache = ResultCache(tmp_path)
    point = PointSpec(figure="f", series="s", x=10, kind="multi", scenario="homogeneous",
                      num_pe=10, seed=42, strategy="OPT-IO-CPU", measured_joins=5)
    relabelled = dataclasses.replace(point, figure="g", series="other", x=99)
    assert cache.key(point) == cache.key(relabelled)
    resized = dataclasses.replace(point, num_pe=20)
    assert cache.key(point) != cache.key(resized)


def test_cache_tolerates_corrupt_entries(tmp_path):
    cache = ResultCache(tmp_path)
    point = PointSpec(figure="f", series="s", x=10, kind="multi", scenario="homogeneous",
                      num_pe=10, seed=42, strategy="OPT-IO-CPU", measured_joins=5)
    cache.path(point).parent.mkdir(parents=True, exist_ok=True)
    cache.path(point).write_text("{not json")
    assert cache.get(point) is None


def test_registry_build_scenario_applies_overrides():
    spec = build_scenario("figure6", system_sizes=(10,), strategies=("OPT-IO-CPU",),
                          measured_joins=7, include_single_user=False)
    points = spec.points()
    assert len(points) == 1
    assert points[0].measured_joins == 7
    with pytest.raises(KeyError):
        build_scenario("figure42")


def test_runner_rejects_negative_workers():
    with pytest.raises(ValueError):
        ParallelRunner(workers=-1)
    assert ParallelRunner(workers=None).workers >= 1
    assert ParallelRunner(workers=0).workers >= 1


# -- cache robustness under corruption and concurrent writers ----------------------
def _cache_point() -> PointSpec:
    return PointSpec(figure="f", series="s", x=10, kind="multi", scenario="homogeneous",
                     num_pe=10, seed=42, strategy="OPT-IO-CPU", measured_joins=5)


def _marker_result(marker: float) -> SimulationResult:
    return SimulationResult(
        strategy="s", num_pe=10, mode="multi-user", simulated_seconds=marker,
        joins_completed=5, join_response_time=0.1, join_response_time_p95=0.2,
        join_response_time_ci=0.0, average_degree=1.0, average_overflow_pages=0.0,
        average_memory_wait=0.0, cpu_utilization=0.5, disk_utilization=0.5,
        memory_utilization=0.5,
    )


def _hammer_cache(root: str, marker: float, iterations: int = 150) -> None:
    cache = ResultCache(root)
    point = _cache_point()
    result = _marker_result(marker)
    for _ in range(iterations):
        cache.put(point, result)


def test_cache_corrupt_entry_is_rewritten(tmp_path):
    cache = ResultCache(tmp_path)
    point = _cache_point()
    path = cache.put(point, _marker_result(1.0))
    # Truncate to a valid-JSON prefix of the real payload: still a miss.
    path.write_text(path.read_text()[: len(path.read_text()) // 2])
    assert cache.get(point) is None
    assert cache.misses == 1
    cache.put(point, _marker_result(2.0))
    restored = cache.get(point)
    assert restored is not None
    assert restored.simulated_seconds == 2.0


def test_cache_concurrent_writers_never_interleave(tmp_path):
    """Two processes storing the same key leave only complete entries behind."""
    import json as json_module
    from concurrent.futures import ProcessPoolExecutor

    cache = ResultCache(tmp_path)
    point = _cache_point()
    path = cache.path(point)
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [
            pool.submit(_hammer_cache, str(tmp_path), marker) for marker in (1.0, 2.0)
        ]
        # Read concurrently while both writers hammer the same key: every
        # observed file content must parse as one complete payload.
        observed = set()
        while any(not future.done() for future in futures):
            try:
                data = json_module.loads(path.read_text())
            except FileNotFoundError:
                continue
            observed.add(data["result"]["simulated_seconds"])
        for future in futures:
            future.result()
    assert observed <= {1.0, 2.0}
    final = cache.get(point)
    assert final is not None and final.simulated_seconds in (1.0, 2.0)
    # No temp files left behind.
    assert not list(tmp_path.glob("*.tmp"))
