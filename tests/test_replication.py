"""Tests for the replication + aggregation layer and the runner bug fixes.

Covers the replicate axis (expansion, seed uniqueness, cache keys), the
mean/stddev/95 % CI aggregation math against hand-computed values, CSV/JSON
export round-trips, worker-count determinism of aggregates, and regression
tests for the falsy ``num_queries`` default, per-point seed collisions,
worker-failure reporting and exact-float x grouping.
"""

import csv
import dataclasses
import json
import math

import pytest

from repro.experiments.base import (
    AggregatedExperimentResult,
    ExperimentPoint,
    ExperimentResult,
    default_time_limit,
)
from repro.experiments.export import collect_rows, export_rows
from repro.runner import (
    ParallelRunner,
    PointExecutionError,
    PointSpec,
    ResultCache,
    ScenarioSpec,
    Sweep,
)
from repro.simulation.results import (
    SimulationResult,
    aggregate_results,
    mean_std_ci95,
    t_critical_95,
)


def make_result(strategy="s", rt=0.5, num_pe=20, extras=None):
    return SimulationResult(
        strategy=strategy,
        num_pe=num_pe,
        mode="multi-user",
        simulated_seconds=10.0,
        joins_completed=5,
        join_response_time=rt,
        join_response_time_p95=rt * 1.5,
        join_response_time_ci=0.01,
        average_degree=10.0,
        average_overflow_pages=0.0,
        average_memory_wait=0.0,
        cpu_utilization=0.5,
        disk_utilization=0.1,
        memory_utilization=0.2,
        extras=extras or {},
    )


def tiny_spec(strategies=("OPT-IO-CPU",), replicates=1, **sweep_kwargs) -> ScenarioSpec:
    return ScenarioSpec(
        name="tiny",
        title="tiny sweep",
        x_label="# PE",
        sweeps=(
            Sweep(kind="multi", scenario="homogeneous", strategies=strategies,
                  system_sizes=(10,), replicates=replicates, **sweep_kwargs),
        ),
        measured_joins=5,
        max_simulated_time=20.0,
    )


# -- replicate expansion ---------------------------------------------------------
def test_replicates_expand_one_point_per_replicate():
    spec = tiny_spec(strategies=("A", "B"), replicates=3)
    points = spec.points()
    assert len(points) == 6
    assert [p.replicate for p in points if p.strategy == "A"] == [0, 1, 2]
    # All replicates of a series share the presentation coordinates.
    assert {(p.series, p.x) for p in points if p.strategy == "A"} == {("A", 10.0)}


def test_replicate_seeds_are_unique_and_stable():
    spec = tiny_spec(strategies=("A", "B"), replicates=4)
    points = spec.points()
    # Within one (series, x) point every replicate observes a distinct seed.
    for series in ("A", "B"):
        seeds = [p.seed for p in points if p.series == series]
        assert len(set(seeds)) == 4
    # Derived seeds (replicate >= 1) never collide across points either.
    derived = [p.seed for p in points if p.replicate > 0]
    assert len(set(derived)) == len(derived)
    assert [p.seed for p in points] == [p.seed for p in spec.points()]  # stable
    # Replicate 0 keeps the base seed: replicated runs embed the legacy
    # fixed-seed run (the paper runs every configuration at seed 42).
    assert [p.seed for p in points if p.replicate == 0] == [42, 42]


def test_with_replicates_copies_spec():
    spec = tiny_spec()
    replicated = spec.with_replicates(3)
    assert len(replicated.points()) == 3 * len(spec.points())
    assert len(spec.points()) == 1  # original untouched
    with pytest.raises(ValueError):
        spec.with_replicates(0)


def test_sweep_rejects_bad_replicates_and_num_queries():
    with pytest.raises(ValueError):
        Sweep(kind="multi", strategies=("A",), system_sizes=(10,), replicates=0)
    with pytest.raises(ValueError):
        Sweep(kind="single", strategies=("A",), system_sizes=(10,), num_queries=0)
    with pytest.raises(ValueError):
        Sweep(kind="fixed-degree", degrees=(2,), system_sizes=(10,), num_queries=-3)


def test_explicit_num_queries_is_not_replaced_by_default():
    # Regression: `sweep.num_queries or default` silently replaced falsy
    # values; the explicit value must survive expansion.
    sweep = Sweep(kind="single", strategies=("A",), system_sizes=(10,), num_queries=1)
    spec = ScenarioSpec(name="s", title="s", x_label="x", sweeps=(sweep,))
    assert [p.num_queries for p in spec.points()] == [1]
    defaults = ScenarioSpec(
        name="s", title="s", x_label="x",
        sweeps=(
            Sweep(kind="single", strategies=("A",), system_sizes=(10,)),
            Sweep(kind="fixed-degree", degrees=(2,), system_sizes=(10,)),
        ),
    ).points()
    assert [p.num_queries for p in defaults] == [5, 2]


def test_analytic_points_are_never_replicated():
    sweep = Sweep(kind="analytic", scenario="homogeneous", degrees=(2, 4),
                  system_sizes=(10,), x_axis="degree", replicates=5)
    spec = ScenarioSpec(name="s", title="s", x_label="x", sweeps=(sweep,))
    points = spec.points()
    assert len(points) == 2
    assert all(p.replicate == 0 for p in points)


def test_cache_key_includes_replicate(tmp_path):
    cache = ResultCache(tmp_path)
    point = PointSpec(figure="f", series="s", x=10, kind="multi", scenario="homogeneous",
                      num_pe=10, seed=42, strategy="OPT-IO-CPU", measured_joins=5)
    other = dataclasses.replace(point, replicate=1)
    assert cache.key(point) != cache.key(other)
    assert ("replicate", 0) in point.cache_payload()


# -- seed collision regressions --------------------------------------------------
def test_reseed_distinguishes_points_sharing_label_and_x():
    # Regression: seeds derived from (series label, x) collided for points
    # whose label did not interpolate a varying axis (placement here).
    sweep = Sweep(kind="multi", scenario="mixed", strategies=("OPT-IO-CPU",),
                  system_sizes=(10,), oltp_placements=("A", "B"),
                  series="{strategy}", reseed_per_point=True)
    spec = ScenarioSpec(name="s", title="s", x_label="x", sweeps=(sweep,))
    points = spec.points()
    assert points[0].series == points[1].series and points[0].x == points[1].x
    assert points[0].seed != points[1].seed


def test_reseed_distinguishes_rate_axis_not_in_label():
    sweep = Sweep(kind="multi", scenario="homogeneous", strategies=("OPT-IO-CPU",),
                  system_sizes=(10,), rates=(0.2, 0.3),
                  series="{strategy}", reseed_per_point=True)
    spec = ScenarioSpec(name="s", title="s", x_label="x", sweeps=(sweep,))
    seeds = [p.seed for p in spec.points()]
    assert len(set(seeds)) == 2


def test_replicates_of_one_point_get_distinct_seeds():
    sweep = Sweep(kind="multi", scenario="homogeneous", strategies=("OPT-IO-CPU",),
                  system_sizes=(10,), reseed_per_point=True, replicates=3)
    spec = ScenarioSpec(name="s", title="s", x_label="x", sweeps=(sweep,))
    seeds = [p.seed for p in spec.points()]
    assert len(set(seeds)) == 3


# -- aggregation math ------------------------------------------------------------
def test_mean_std_ci95_hand_computed():
    mean, std, ci = mean_std_ci95([1.0, 2.0, 3.0])
    assert mean == pytest.approx(2.0)
    assert std == pytest.approx(1.0)
    assert ci == pytest.approx(t_critical_95(2) * 1.0 / math.sqrt(3))
    assert ci == pytest.approx(4.303 / math.sqrt(3))
    mean, std, ci = mean_std_ci95([10.0, 12.0, 14.0, 16.0])
    assert mean == pytest.approx(13.0)
    assert std == pytest.approx(math.sqrt(20.0 / 3.0))
    assert ci == pytest.approx(3.182 * math.sqrt(20.0 / 3.0) / 2.0)


def test_mean_std_ci95_degenerate_cases():
    assert mean_std_ci95([5.0]) == (5.0, 0.0, 0.0)
    with pytest.raises(ValueError):
        mean_std_ci95([])
    with pytest.raises(ValueError):
        t_critical_95(0)
    # Off-table df floors to the largest tabulated df below it, so the
    # critical value is conservative (never narrower than the true 95 % CI).
    assert t_critical_95(35) == pytest.approx(2.042)  # t(30)
    assert t_critical_95(45) == pytest.approx(2.021)  # t(40)
    assert t_critical_95(200) == pytest.approx(1.980)  # t(120)


def test_aggregate_results_field_wise_mean_and_ci():
    results = [make_result(rt=0.1, extras={"k": 1.0}),
               make_result(rt=0.2, extras={"k": 3.0}),
               make_result(rt=0.3, extras={"k": 5.0})]
    aggregate = aggregate_results(results)
    assert aggregate.n == 3
    assert aggregate.mean.join_response_time == pytest.approx(0.2)
    assert aggregate.mean.strategy == "s" and aggregate.mean.num_pe == 20
    assert aggregate.stddev["join_response_time"] == pytest.approx(0.1)
    assert aggregate.ci95["join_response_time"] == pytest.approx(
        4.303 * 0.1 / math.sqrt(3)
    )
    assert aggregate.mean.extras["k"] == pytest.approx(3.0)
    assert aggregate.stddev["extras.k"] == pytest.approx(2.0)


def test_aggregate_results_drops_extras_missing_from_some_replicates():
    # A key absent from one replicate would otherwise be aggregated over a
    # smaller sample than the reported n; such keys are dropped entirely.
    results = [make_result(rt=0.1, extras={"k": 1.0, "partial": 9.0}),
               make_result(rt=0.2, extras={"k": 3.0})]
    aggregate = aggregate_results(results)
    assert aggregate.n == 2
    assert "partial" not in aggregate.mean.extras
    assert "extras.partial" not in aggregate.ci95
    assert aggregate.mean.extras["k"] == pytest.approx(2.0)


def test_aggregate_results_rejects_mixed_identity():
    with pytest.raises(ValueError):
        aggregate_results([make_result(strategy="a"), make_result(strategy="b")])
    with pytest.raises(ValueError):
        aggregate_results([make_result(num_pe=10), make_result(num_pe=20)])
    with pytest.raises(ValueError):
        aggregate_results([])


def test_experiment_aggregate_groups_series_and_renders_ci_table():
    experiment = ExperimentResult(figure="fx", title="demo", x_label="# PE")
    for replicate, rt in enumerate((0.1, 0.2, 0.3)):
        experiment.add(ExperimentPoint("fx", "A", 10, make_result("A", rt=rt),
                                       replicate=replicate))
    experiment.add(ExperimentPoint("fx", "B", 10, make_result("B", rt=0.4)))
    assert experiment.has_replicates
    # value() returns the first replicate; values() returns all of them.
    assert experiment.value("A", 10).replicate == 0
    assert [p.replicate for p in experiment.values("A", 10)] == [0, 1, 2]
    assert experiment.values("B", 10.0 + 1e-13) == experiment.values("B", 10)
    aggregated = experiment.aggregate()
    assert isinstance(aggregated, AggregatedExperimentResult)
    assert [(p.series, p.n) for p in aggregated.points] == [("A", 3), ("B", 1)]
    a = aggregated.value("A", 10)
    assert a.response_time_ms == pytest.approx(200.0)
    assert a.response_time_ci_ms == pytest.approx(4.303 * 100.0 / math.sqrt(3))
    table = aggregated.table()
    assert "±" in table
    assert "mean ± 95% CI" in table
    # A custom metric without a ci metric renders plain mean cells.
    assert "±" not in aggregated.table(metric=lambda p: p.result.average_degree,
                                      unit="join processors")


# -- exact-float x grouping ------------------------------------------------------
def test_x_values_merge_last_ulp_duplicates():
    # Regression: 0.07 * 100.0 != 7.0 exactly; such rows must not split.
    experiment = ExperimentResult(figure="fx", title="demo", x_label="sel %")
    experiment.add(ExperimentPoint("fx", "A", 7.000000000000001, make_result("A", rt=0.1)))
    experiment.add(ExperimentPoint("fx", "B", 7.0, make_result("B", rt=0.2)))
    assert len(experiment.x_values()) == 1
    assert experiment.value("A", 7.0) is not None
    assert experiment.value("B", 7.000000000000001) is not None
    table = experiment.table()
    assert table.count("\n") == 4  # title, header, rule, one data row, footer


def test_expansion_canonicalises_selectivity_pct_x():
    sweep = Sweep(kind="multi", scenario="join-complexity", strategies=("A",),
                  system_sizes=(60,), selectivities=(0.07,), x_axis="selectivity_pct")
    spec = ScenarioSpec(name="s", title="s", x_label="sel %", sweeps=(sweep,))
    assert spec.points()[0].x == 7.0


def test_default_time_limit_rejects_bad_fallback(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_TIME_LIMIT", raising=False)
    assert default_time_limit(50.0) == 50.0
    monkeypatch.setenv("REPRO_BENCH_TIME_LIMIT", "-3")
    assert default_time_limit(50.0) == 50.0
    with pytest.raises(ValueError):
        default_time_limit(0.0)


# -- worker-failure handling -----------------------------------------------------
def test_failing_point_is_named_in_error_serial():
    spec = tiny_spec(strategies=("OPT-IO-CPU", "NO-SUCH"))
    with pytest.raises(PointExecutionError) as excinfo:
        ParallelRunner(workers=1).run(spec)
    assert "NO-SUCH" in str(excinfo.value)
    assert excinfo.value.point.strategy == "NO-SUCH"
    assert excinfo.value.__cause__ is not None


def test_failing_point_is_named_in_error_parallel():
    spec = tiny_spec(strategies=("OPT-IO-CPU", "NO-SUCH", "MIN-IO"))
    with pytest.raises(PointExecutionError) as excinfo:
        ParallelRunner(workers=2).run(spec)
    assert excinfo.value.point.strategy == "NO-SUCH"
    assert "tiny" in str(excinfo.value)


def test_failure_preserves_completed_sibling_work_in_cache(tmp_path):
    # The failing point raises in milliseconds while its sibling simulates;
    # the runner must harvest the sibling's result into the cache before
    # re-raising instead of discarding the completed work.
    cache = ResultCache(tmp_path / "cache")
    with pytest.raises(PointExecutionError):
        ParallelRunner(workers=2, cache=cache).run(
            tiny_spec(strategies=("NO-SUCH", "OPT-IO-CPU"))
        )
    warm = ResultCache(tmp_path / "cache")
    ParallelRunner(workers=1, cache=warm).run(tiny_spec(strategies=("OPT-IO-CPU",)))
    assert warm.hits == 1 and warm.misses == 0


# -- end-to-end determinism and export -------------------------------------------
def test_aggregates_identical_across_worker_counts():
    spec = tiny_spec(replicates=2)
    serial = ParallelRunner(workers=1).run_aggregated(spec)
    parallel = ParallelRunner(workers=4).run_aggregated(spec)
    assert [(p.series, p.x, p.aggregate) for p in serial.points] == [
        (p.series, p.x, p.aggregate) for p in parallel.points
    ]
    assert serial.table() == parallel.table()


def test_replicated_run_caches_each_replicate(tmp_path):
    spec = tiny_spec(replicates=2)
    cache = ResultCache(tmp_path / "cache")
    ParallelRunner(workers=1, cache=cache).run(spec)
    warm = ResultCache(tmp_path / "cache")
    ParallelRunner(workers=1, cache=warm).run(spec)
    assert warm.hits == 2 and warm.misses == 0


def test_export_rows_csv_and_json_round_trip(tmp_path):
    experiment = ExperimentResult(figure="fx", title="demo", x_label="# PE")
    for replicate, rt in enumerate((0.1, 0.3)):
        experiment.add(ExperimentPoint("fx", "A", 10, make_result("A", rt=rt),
                                       replicate=replicate))
    rows = collect_rows(experiment, experiment.aggregate())
    assert [row["row_type"] for row in rows] == ["replicate", "replicate", "aggregate"]

    csv_path = export_rows(rows, tmp_path / "out.csv", "csv")
    with csv_path.open() as handle:
        parsed = list(csv.DictReader(handle))
    assert [row["row_type"] for row in parsed] == ["replicate", "replicate", "aggregate"]
    assert [row["replicate"] for row in parsed[:2]] == ["0", "1"]
    aggregate_row = parsed[2]
    assert float(aggregate_row["join_rt_ms"]) == pytest.approx(200.0)
    assert aggregate_row["n"] == "2"
    assert float(aggregate_row["join_rt_ci95_ms"]) > 0

    json_path = export_rows(rows, tmp_path / "out.json", "json")
    parsed_json = json.loads(json_path.read_text())
    assert parsed_json == rows

    with pytest.raises(ValueError):
        export_rows(rows, tmp_path / "out.xml", "xml")
