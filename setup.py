"""Setuptools shim so the package can be installed without the `wheel` module.

`pip install -e .` requires the `wheel` package for PEP 660 editable builds;
in fully offline environments without it, `python setup.py develop` provides
an equivalent editable install.
"""
from setuptools import setup

setup()
