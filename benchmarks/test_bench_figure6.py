"""Benchmark: Fig. 6 — dynamic degree of join parallelism (homogeneous load)."""

from conftest import bench_joins, bench_time_limit, bench_workers, write_report

from repro.experiments import figure6

SIZES = (10, 20, 40, 60, 80)


def _run():
    return figure6.run(
        system_sizes=SIZES,
        measured_joins=bench_joins(30),
        max_simulated_time=bench_time_limit(60.0),
        workers=bench_workers(),
    )


def test_figure6_dynamic_degree(benchmark):
    experiment = benchmark.pedantic(_run, iterations=1, rounds=1)
    write_report("figure6", experiment.table())

    def rt(series, x):
        return experiment.value(series, x).result.join_response_time

    # The CPU-aware strategies stay closest to single-user mode at 80 PE and
    # beat the purely memory-driven integrated schemes (the paper's main
    # finding for homogeneous workloads).
    best_cpu_aware = min(rt("pmu_cpu+LUM", 80), rt("OPT-IO-CPU", 80))
    assert best_cpu_aware <= rt("MIN-IO-SUOPT", 80) * 1.05

    # The CPU-aware strategies keep the system out of saturation at 80 PE.
    assert experiment.value("OPT-IO-CPU", 80).result.cpu_utilization < 0.85

    # MIN-IO-SUOPT drives a clearly higher degree of parallelism than OPT-IO-CPU
    # under CPU contention (it ignores the CPU bound).
    assert (
        experiment.value("MIN-IO-SUOPT", 80).result.average_degree
        >= experiment.value("OPT-IO-CPU", 80).result.average_degree
    )

    # Single-user baseline is a lower bound.
    for x in SIZES:
        assert rt("single-user (psu_opt)", x) <= rt("OPT-IO-CPU", x) * 1.2
