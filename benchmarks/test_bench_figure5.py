"""Benchmark: Fig. 5 — static degree of join parallelism (homogeneous load)."""

from conftest import bench_joins, bench_time_limit, bench_workers, write_report

from repro.experiments import figure5

SIZES = (10, 20, 40, 60, 80)


def _run():
    return figure5.run(
        system_sizes=SIZES,
        measured_joins=bench_joins(30),
        max_simulated_time=bench_time_limit(60.0),
        workers=bench_workers(),
    )


def test_figure5_static_degree(benchmark):
    experiment = benchmark.pedantic(_run, iterations=1, rounds=1)
    write_report("figure5", experiment.table())

    def rt(series, x):
        return experiment.value(series, x).result.join_response_time

    # Single-user mode is the lower bound everywhere.
    for x in SIZES:
        assert rt("single-user (psu_opt)", x) <= rt("psu_opt+RANDOM", x)

    # At small system sizes the psu-opt strategies are close to single-user
    # and better than the low-parallelism psu-noIO schemes.
    assert rt("psu_opt+LUM", 20) < rt("psu_noIO+RANDOM", 20)

    # At 80 PE CPU contention dominates: psu-noIO+LUM overtakes the psu-opt
    # schemes (the paper's crossover beyond ~60 PE).
    assert rt("psu_noIO+LUM", 80) < rt("psu_opt+RANDOM", 80)

    # RANDOM selection is the worst placement for the small static degree.
    assert rt("psu_noIO+LUM", 80) < rt("psu_noIO+RANDOM", 80)
