"""Benchmark: Fig. 1a — single-user response time vs. degree of parallelism."""

from conftest import bench_workers, write_report

from repro.experiments import figure1


def _run():
    experiment = figure1.run(
        num_pe=80,
        degrees=(1, 2, 4, 8, 16, 30, 60, 80),
        queries_per_point=2,
        workers=bench_workers(),
    )
    return experiment


def test_figure1_response_time_curve(benchmark):
    experiment = benchmark.pedantic(_run, iterations=1, rounds=1)
    write_report("figure1", experiment.table())

    # The simulated curve must show the paper's U-shape: a low point well
    # above 1 processor and below the maximum degree.
    simulated = experiment.series("simulation")
    times = {point.x: point.result.join_response_time for point in simulated}
    best_degree = min(times, key=times.get)
    assert 4 < best_degree < 80
    assert times[1] > times[best_degree]
    assert times[80] > times[best_degree]

    # The analytic model used by the strategies agrees on the optimum region.
    analytic = experiment.series("analytic model")
    analytic_times = {point.x: point.result.join_response_time for point in analytic}
    analytic_best = min(analytic_times, key=analytic_times.get)
    assert abs(analytic_best - best_degree) <= 32
