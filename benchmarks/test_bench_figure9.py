"""Benchmark: Fig. 9a/9b — static vs. dynamic load balancing, mixed workloads."""

from conftest import bench_joins, bench_time_limit, bench_workers, write_report

from repro.experiments import figure9

SIZES = (10, 20, 40, 80)
STRATEGIES = ("psu_opt+RANDOM", "psu_noIO+RANDOM", "psu_noIO+LUM", "pmu_cpu+LUM", "OPT-IO-CPU")


def _run(placement):
    return figure9.run(
        oltp_placement=placement,
        system_sizes=SIZES,
        strategies=STRATEGIES,
        measured_joins=bench_joins(20),
        max_simulated_time=bench_time_limit(40.0),
        workers=bench_workers(),
    )


def test_figure9a_oltp_on_a_nodes(benchmark):
    experiment = benchmark.pedantic(lambda: _run("A"), iterations=1, rounds=1)
    write_report("figure9a", experiment.table())

    def rt(series, x):
        return experiment.value(series, x).result.join_response_time

    # Dynamic, integrated load balancing (OPT-IO-CPU) beats the static RANDOM
    # schemes, which blindly put join work on the OLTP nodes.
    assert rt("OPT-IO-CPU", 80) < rt("psu_opt+RANDOM", 80)
    assert rt("OPT-IO-CPU", 20) < rt("psu_opt+RANDOM", 20)

    # The paper's key ablation: the isolated pmu_cpu+LUM strategy suffers at
    # smaller systems because it ignores memory when sizing the join, while
    # the integrated OPT-IO-CPU avoids the OLTP nodes.
    assert rt("OPT-IO-CPU", 20) <= rt("pmu_cpu+LUM", 20)


def test_figure9b_oltp_on_b_nodes(benchmark):
    experiment = benchmark.pedantic(lambda: _run("B"), iterations=1, rounds=1)
    write_report("figure9b", experiment.table())

    def rt(series, x):
        return experiment.value(series, x).result.join_response_time

    # With the four-fold OLTP throughput the static RANDOM schemes degrade
    # most; memory-aware selection (LUM / integrated) is clearly better.
    assert rt("psu_noIO+LUM", 80) < rt("psu_opt+RANDOM", 80)
    assert rt("psu_noIO+LUM", 80) < rt("psu_noIO+RANDOM", 80)
    best_dynamic = min(rt("pmu_cpu+LUM", 80), rt("OPT-IO-CPU", 80))
    assert best_dynamic < rt("psu_opt+RANDOM", 80)
