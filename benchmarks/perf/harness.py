"""Performance harness: kernel microbenchmarks + figure-point wall times.

This is the machine-readable perf trajectory of the repository.  Running the
harness measures

* **kernel microbenchmarks** -- events/sec through the discrete-event kernel
  for the idioms the simulator leans on (timeout chains, FIFO and priority
  resource contention, request cancellation churn, store ping-pong, monitor
  statistics), and
* **figure points** -- wall-clock best/p50/p95 of representative
  tier-1-scale experiment points executed through the runner's
  :func:`repro.runner.runner.run_point_spec` (the exact path every local,
  parallel and distributed point takes).  Every sample runs in a *fresh
  subprocess*: long-lived processes accumulate allocator/GC state that
  skews later samples by 20 %+ on small VMs, which a per-sample process
  resets.  Speedups use the best (minimum) sample -- the standard
  noise-robust estimator on shared machines.
* **scale sweep** (``--scale``) -- the PR 6 event-coalescing trajectory:
  points at 80/160/320/640/1280 PEs, each sampled twice in fresh
  subprocesses (``REPRO_COALESCE=1`` and ``=0``), recording wall-clock,
  events/sec, peak RSS, the coalescing ratio (events simulated vs events
  dispatched) and the resulting wall speedup into ``BENCH_PR6.json``.
  PR 7 adds two heterogeneous-hardware kinds per size: ``hetero_default``
  (explicitly-default node classes -- simulation outcomes identical to the
  uniform ``timeline`` point, so its wall ratio against that point tracks
  the overhead the heterogeneity layer adds to *uniform* configs; target
  < 5 %) and ``heterogeneous`` (a real fast/slow mix on a 4-rack
  interconnect, the mixed-hardware scaling point proper).  PR 8 adds
  ``fault_default`` (the fault injector attached but idle -- its wall
  ratio against the uniform point is the injector's overhead, same < 5 %
  target) and ``faulted`` (a crash-and-recover cycle under load, up to
  640 PEs).

Results are written to ``BENCH_PR5.json`` at the repository root under a
``--label`` (``before``/``after``/anything): the file accumulates labels, so
one JSON document carries the full before/after comparison and a computed
``speedup`` section.  CI runs ``--quick`` with ``--check-floor`` (microbench
events/sec below the committed floors in ``benchmarks/perf/baseline.json``
fail the job; figure wall times stay warn-only) plus a ``--scale --quick``
smoke of the sweep.

Usage::

    PYTHONPATH=src python benchmarks/perf/harness.py --label after
    PYTHONPATH=src python benchmarks/perf/harness.py --quick --check-floor
    PYTHONPATH=src python benchmarks/perf/harness.py --scale
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import statistics
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_PR5.json"
BENCH6_PATH = REPO_ROOT / "BENCH_PR6.json"
FLOOR_PATH = Path(__file__).resolve().parent / "baseline.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim import (  # noqa: E402
    Container,
    Environment,
    PriorityResource,
    Resource,
    Store,
    ValueMonitor,
)

__all__ = ["run_harness", "run_scale", "main", "MICROBENCHES", "SCALE_SIZES"]


# --------------------------------------------------------------------------
# kernel microbenchmarks -- each returns the number of kernel events it
# pushed through the queue; the caller turns that into events/sec.
# --------------------------------------------------------------------------

def bench_timeout_chain(scale: int) -> int:
    """Raw event throughput: independent processes running timeout chains."""
    env = Environment()
    hops = 50 * scale

    def ticker(period: float):
        for _ in range(hops):
            yield env.timeout(period)

    for index in range(20):
        env.process(ticker(0.1 + 0.01 * index))
    env.run()
    return 20 * hops


def bench_fifo_resource(scale: int) -> int:
    """FIFO resource under contention (the CPU/disk/controller idiom)."""
    env = Environment()
    server = Resource(env, capacity=2)
    rounds = 25 * scale
    users = 16

    def user():
        for _ in range(rounds):
            with server.request() as req:
                yield req
                yield env.timeout(1.0)

    for _ in range(users):
        env.process(user())
    env.run()
    # request grant + timeout per round per user.
    return 2 * users * rounds


def bench_priority_resource(scale: int) -> int:
    """Priority queue discipline with mixed priorities (the CPU idiom)."""
    env = Environment()
    cpu = PriorityResource(env, capacity=1)
    rounds = 25 * scale
    users = 12

    def user(priority: int):
        for _ in range(rounds):
            with cpu.request(priority=priority) as req:
                yield req
                yield env.timeout(0.5)

    for index in range(users):
        env.process(user(priority=index % 3))
    env.run()
    return 2 * users * rounds


def bench_cancellation_churn(scale: int) -> int:
    """Many queued requests cancelled before their grant (lazy purge path)."""
    env = Environment()
    cpu = PriorityResource(env, capacity=1)
    waves = 10 * scale
    per_wave = 40

    def holder():
        with cpu.request(priority=0) as req:
            yield req
            yield env.timeout(float(waves) + 1.0)

    def churn():
        for _ in range(waves):
            doomed = [cpu.request(priority=5) for _ in range(per_wave)]
            yield env.timeout(1.0)
            for request in doomed:
                request.cancel()

    env.process(holder())
    env.process(churn())
    env.run()
    return waves * per_wave


def bench_store_pingpong(scale: int) -> int:
    """Store put/get ping-pong (the message-passing idiom)."""
    env = Environment()
    store = Store(env)
    messages = 400 * scale

    def producer():
        for index in range(messages):
            yield store.put(index)
            yield env.timeout(0.01)

    def consumer():
        for _ in range(messages):
            yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    return 3 * messages


def bench_container_tokens(scale: int) -> int:
    """Container get/put token accounting (the buffer-pool idiom)."""
    env = Environment()
    pool = Container(env, capacity=100.0, init=100.0)
    rounds = 300 * scale

    def worker():
        for _ in range(rounds):
            yield pool.get(30.0)
            yield env.timeout(0.5)
            yield pool.put(30.0)

    for _ in range(4):
        env.process(worker())
    env.run()
    return 3 * 4 * rounds


def bench_monitor_stats(scale: int) -> int:
    """ValueMonitor record + rolling min/max/percentile reads."""
    monitor = ValueMonitor("bench")
    samples = 4000 * scale
    sink = 0.0
    for index in range(samples):
        monitor.record((index * 2654435761 % 1000) / 10.0)
        if index % 50 == 0:
            sink += monitor.minimum + monitor.maximum + monitor.mean
    sink += monitor.percentile(50) + monitor.percentile(95)
    if not math.isfinite(sink):  # pragma: no cover - sanity guard
        raise RuntimeError("monitor benchmark produced non-finite values")
    return samples


MICROBENCHES: Dict[str, Callable[[int], int]] = {
    "timeout_chain": bench_timeout_chain,
    "fifo_resource": bench_fifo_resource,
    "priority_resource": bench_priority_resource,
    "cancellation_churn": bench_cancellation_churn,
    "store_pingpong": bench_store_pingpong,
    "container_tokens": bench_container_tokens,
    "monitor_stats": bench_monitor_stats,
}


def _time_micro(fn: Callable[[int], int], scale: int, repeats: int) -> Dict[str, float]:
    fn(max(1, scale // 10))  # warm-up at reduced scale
    best = math.inf
    events = 0
    for _ in range(repeats):
        start = time.perf_counter()
        events = fn(scale)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return {
        "events": events,
        "seconds": round(best, 6),
        "events_per_sec": round(events / best, 1) if best > 0 else float("inf"),
    }


# --------------------------------------------------------------------------
# figure-point macrobenchmarks
# --------------------------------------------------------------------------

def _figure_points(quick: bool):
    """Representative tier-1-scale points (multi-user figure5 + OLTP mix)."""
    from repro.runner import build_scenario
    import repro.experiments  # noqa: F401 - populate the scenario registry

    joins = 10 if quick else 40
    sizes = [20] if quick else [40, 80]
    spec = build_scenario("figure5", system_sizes=sizes, measured_joins=joins)
    points = [
        point
        for point in spec.points()
        if point.kind == "multi" and point.strategy in ("psu_noIO+RANDOM", "psu_opt+LUM")
    ]
    return points


#: Executed with ``python -c`` per figure-point sample; reads the point's
#: ``asdict`` payload on stdin, prints ``seconds joins`` on stdout.
_CHILD_SCRIPT = """\
import json, sys, time
from repro.runner.spec import point_from_payload
from repro.runner.runner import run_point_spec
point = point_from_payload(json.loads(sys.stdin.read()))
start = time.perf_counter()
result = run_point_spec(point)
print(time.perf_counter() - start, result.joins_completed)
"""


def _time_point_in_subprocess(payload: str, env: Dict[str, str]) -> tuple[float, int]:
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        input=payload, capture_output=True, text=True, env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"figure-point child failed:\n{proc.stderr}")
    seconds, joins = proc.stdout.split()[-2:]
    return float(seconds), int(joins)


def _time_figure_points(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    import dataclasses

    import repro

    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")

    results: Dict[str, Dict[str, float]] = {}
    for point in _figure_points(quick):
        key = f"{point.figure}/{point.strategy}@{point.num_pe}pe"
        payload = json.dumps(dataclasses.asdict(point))
        samples: List[float] = []
        joins = 0
        for _ in range(repeats):
            seconds, joins = _time_point_in_subprocess(payload, env)
            samples.append(seconds)
        samples.sort()
        results[key] = {
            "runs": repeats,
            "joins_completed": joins,
            "p50_s": round(statistics.median(samples), 4),
            "p95_s": round(
                samples[min(len(samples) - 1, math.ceil(0.95 * len(samples)) - 1)], 4
            ),
            "best_s": round(samples[0], 4),
            "mean_s": round(statistics.fmean(samples), 4),
        }
    return results


# --------------------------------------------------------------------------
# scale sweep (PR 6): coalescing ratio / wall speedup / RSS vs system size
# --------------------------------------------------------------------------

#: PE counts for the scale sweep (the paper's figures stop at 80; the sweep
#: pushes the same simulator toward the 1k-PE regime).
SCALE_SIZES = (80, 160, 320, 640, 1280)
SCALE_QUICK_SIZES = (80, 320)


def _scale_points(quick: bool) -> List[Dict[str, object]]:
    """The (PE count, workload kind) grid of the sweep.

    * ``uncontended`` -- a lockstep fleet of PEs each looping a large CPU
      burst, a sequential disk chain and a network transfer chain on
      otherwise-idle hardware: the macro-event best case, where batches jump
      straight to their ends.
    * ``single_user`` -- the driver's closed-loop join workload with a fine
      10k-instruction CPU quantum (0.5 ms slices), where per-quantum events
      dominate the unbatched kernel.
    * ``timeline`` -- an open multi-user windowed run: realistic contention,
      where batches split often and the coalescing win is smallest.
    * ``hetero_default`` -- the ``timeline`` workload on a config declaring
      an explicitly-*default* node class: outcomes are identical to the
      uniform point, so the wall ratio between the two is the heterogeneity
      layer's overhead on uniform configs (< 5 % target).
    * ``heterogeneous`` -- the ``timeline`` workload on a real fast/slow mix
      (half the PEs at 2x MIPS/memory) over a 4-rack interconnect.
    * ``fault_default`` -- the ``timeline`` workload with the PR 8 fault
      injector attached but effectively idle (a single no-op degrade at
      factor 1.0): the wall ratio against the uniform ``timeline`` point is
      the injector's bookkeeping overhead (< 5 % target, like
      ``hetero_default``).
    * ``faulted`` -- the ``timeline`` workload through a crash-and-recover
      cycle (PE 1 down 1.5 s..2.5 s of the 4 s run): kills, resubmissions
      and failure-aware scheduling under load, capped at 640 PEs.
    """
    from repro.faults.plan import FaultEvent

    crash_plan = (FaultEvent(time=1.5, kind="pe_crash", pe=1, duration=1.0).encode(),)
    noop_plan = (FaultEvent(time=2.0, kind="degrade", pe=1, factor=1.0).encode(),)
    points: List[Dict[str, object]] = []
    for num_pe in SCALE_QUICK_SIZES if quick else SCALE_SIZES:
        points.append({"kind": "uncontended", "num_pe": num_pe, "iterations": 3})
        points.append(
            {"kind": "single_user", "num_pe": num_pe, "num_queries": 3,
             "quantum_instructions": 10_000}
        )
        for kind in ("timeline", "hetero_default", "heterogeneous"):
            points.append(
                {"kind": kind, "num_pe": num_pe, "arrival_rate_per_pe": 0.02,
                 "duration": 4.0}
            )
        points.append(
            {"kind": "fault_default", "num_pe": num_pe, "arrival_rate_per_pe": 0.02,
             "duration": 4.0, "faults": noop_plan}
        )
        if num_pe <= 640:
            points.append(
                {"kind": "faulted", "num_pe": num_pe, "arrival_rate_per_pe": 0.02,
                 "duration": 4.0, "faults": crash_plan}
            )
    return points


#: Executed with ``python -c`` per scale sample; reads the point payload on
#: stdin, prints a JSON record on stdout.  The coalescing mode comes from
#: ``REPRO_COALESCE`` in the child's environment, read at server construction.
_SCALE_CHILD_SCRIPT = """\
import json, resource, sys, time
payload = json.loads(sys.stdin.read())
kind, num_pe = payload["kind"], payload["num_pe"]
extra = {}
if kind == "uncontended":
    from repro.config.parameters import CpuConfig, DiskConfig, InstructionCosts, NetworkConfig
    from repro.hardware import CpuServer, DiskArray, Network
    from repro.sim import Environment
    env = Environment()
    costs = InstructionCosts()
    net = Network(env, NetworkConfig(), costs)
    def add_pe(pe_id):
        cpu = CpuServer(env, CpuConfig(), costs, pe_id=pe_id)
        disks = DiskArray(env, DiskConfig(disks_per_pe=1), pe_id=pe_id)
        def proc():
            for _ in range(payload["iterations"]):
                yield from cpu.consume(3_000_000)
                yield from disks.read_sequential(120)
                yield from net.transfer_chain([8192] * 8)
        env.process(proc())
    for pe in range(num_pe):
        add_pe(pe)
    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
else:
    import dataclasses
    from repro.experiments.scenarios import homogeneous_config
    from repro.simulation.driver import SimulationDriver
    config = homogeneous_config(
        num_pe, arrival_rate_per_pe=payload.get("arrival_rate_per_pe", 0.25)
    )
    if payload.get("quantum_instructions"):
        config = config.with_overrides(cpu=dataclasses.replace(
            config.cpu, quantum_instructions=payload["quantum_instructions"]))
    if kind == "hetero_default":
        from repro.config.parameters import NodeClass
        config = config.with_overrides(
            node_classes=(NodeClass(name="plain", fraction=1.0),))
    elif kind == "heterogeneous":
        from repro.config.parameters import NodeClass, TopologyConfig
        config = config.with_overrides(
            node_classes=(NodeClass(name="fast", fraction=0.5,
                                    mips_factor=2.0, memory_factor=2.0),),
            topology=TopologyConfig(racks=4, cross_rack_latency_factor=8.0,
                                    cross_rack_bandwidth_factor=2.0))
    faults = None
    if payload.get("faults"):
        from repro.faults.plan import decode_failures
        faults = decode_failures(tuple(
            tuple(tuple(pair) for pair in event) for event in payload["faults"]
        ))
    driver = SimulationDriver(config, strategy="OPT-IO-CPU", faults=faults)
    start = time.perf_counter()
    if kind == "single_user":
        result = driver.run_single_user(num_queries=payload["num_queries"])
    else:
        result = driver.run_timed(payload["duration"], timeline_window=1.0)
    wall = time.perf_counter() - start
    env = driver.env
    extra["joins_completed"] = result.joins_completed
    if faults is not None:
        runtime = driver.system.faults
        extra["faults_injected"] = runtime.injected
        extra["fault_kills"] = runtime.kills
        extra["fault_resubmits"] = runtime.resubmits
print(json.dumps({
    "wall_s": wall,
    "events_dispatched": env.events_dispatched,
    "events_coalesced": env.events_coalesced,
    "sim_seconds": env.now,
    "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    **extra,
}))
"""


def _run_scale_sample(payload: Dict[str, object], coalesce: bool,
                      env: Dict[str, str], repeats: int) -> Dict[str, object]:
    """Best-wall-clock sample of one (point, mode) pair in fresh subprocesses."""
    child_env = dict(env)
    child_env["REPRO_COALESCE"] = "1" if coalesce else "0"
    best: Optional[Dict[str, object]] = None
    for _ in range(repeats):
        proc = subprocess.run(
            [sys.executable, "-c", _SCALE_CHILD_SCRIPT],
            input=json.dumps(payload), capture_output=True, text=True, env=child_env,
        )
        if proc.returncode != 0:
            raise RuntimeError(f"scale child failed:\n{proc.stderr}")
        sample = json.loads(proc.stdout.splitlines()[-1])
        if best is not None and sample["events_dispatched"] != best["events_dispatched"]:
            raise RuntimeError(
                f"scale point {payload} is non-deterministic across repeats: "
                f"{sample['events_dispatched']} != {best['events_dispatched']} events"
            )
        if best is None or sample["wall_s"] < best["wall_s"]:
            best = sample
    assert best is not None
    best["wall_s"] = round(best["wall_s"], 4)
    return best


def run_scale(quick: bool = False, repeats: Optional[int] = None) -> Dict[str, object]:
    """Run the PR 6 scale sweep and return the BENCH_PR6 document."""
    import repro

    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    sample_repeats = repeats or (1 if quick else 2)

    points: List[Dict[str, object]] = []
    for payload in _scale_points(quick):
        on = _run_scale_sample(payload, True, env, sample_repeats)
        off = _run_scale_sample(payload, False, env, sample_repeats)
        dispatched = on["events_dispatched"]
        simulated = dispatched + on["events_coalesced"]
        record = {
            **payload,
            "coalesced": on,
            "uncoalesced": off,
            # events simulated vs events dispatched: how many heap pushes the
            # macro-event layer elided within the coalesced run itself.
            "coalescing_ratio": round(simulated / dispatched, 3),
            # cross-mode reduction in dispatched events (off vs on).
            "events_reduction": round(off["events_dispatched"] / dispatched, 3),
            "wall_speedup": round(off["wall_s"] / on["wall_s"], 3),
            "events_per_sec": round(dispatched / on["wall_s"], 1),
        }
        points.append(record)
        print(
            f"[scale] {payload['kind']:>12} @{payload['num_pe']:>5} PE: "
            f"ratio {record['coalescing_ratio']:>6.2f}x, "
            f"reduction {record['events_reduction']:>6.2f}x, "
            f"speedup {record['wall_speedup']:>5.2f}x, "
            f"{record['events_per_sec']:>11,.0f} ev/s, "
            f"rss {on['ru_maxrss_kb'] / 1024:,.0f} MB"
        )
    # Heterogeneity-layer overhead on uniform configs: the hetero_default
    # point runs the exact same simulation as the uniform timeline point,
    # so any wall-clock gap is pure config/accessor overhead (< 5 % target,
    # tracked per size; single-sample CI runs are noisy, so this records
    # rather than fails).
    walls = {
        (record["kind"], record["num_pe"]): record["coalesced"]["wall_s"]
        for record in points
    }
    hetero_overhead: Dict[str, float] = {}
    # Same discipline for the fault injector: the fault_default point runs
    # the timeline workload with an attached-but-idle injector, so its wall
    # ratio against the uniform point is the injector's overhead on
    # fault-free runs (< 5 % target, recorded rather than failed).
    fault_overhead: Dict[str, float] = {}
    for num_pe in SCALE_QUICK_SIZES if quick else SCALE_SIZES:
        base = walls.get(("timeline", num_pe))
        twin = walls.get(("hetero_default", num_pe))
        if base and twin:
            overhead = twin / base - 1.0
            hetero_overhead[str(num_pe)] = round(overhead, 4)
            print(
                f"[scale] hetero-default overhead @{num_pe:>5} PE: "
                f"{overhead:+.1%} (target < 5%)"
            )
        idle = walls.get(("fault_default", num_pe))
        if base and idle:
            overhead = idle / base - 1.0
            fault_overhead[str(num_pe)] = round(overhead, 4)
            print(
                f"[scale] fault-default overhead @{num_pe:>5} PE: "
                f"{overhead:+.1%} (target < 5%)"
            )
    return {
        "schema": "repro-lb-scale/1",
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "sizes": list(SCALE_QUICK_SIZES if quick else SCALE_SIZES),
        "points": points,
        "hetero_default_overhead": hetero_overhead,
        "fault_default_overhead": fault_overhead,
    }


# --------------------------------------------------------------------------
# orchestration
# --------------------------------------------------------------------------

def run_harness(
    label: str,
    quick: bool = False,
    repeats: Optional[int] = None,
    skip_figures: bool = False,
) -> Dict[str, object]:
    """Run every benchmark and return this label's result document."""
    scale = 1 if quick else 4
    micro_repeats = repeats or (2 if quick else 3)
    micro: Dict[str, Dict[str, float]] = {}
    for name, fn in MICROBENCHES.items():
        micro[name] = _time_micro(fn, scale, micro_repeats)
        print(
            f"[micro] {name:>20}: {micro[name]['events_per_sec']:>12,.0f} events/s "
            f"({micro[name]['seconds'] * 1e3:,.1f} ms for {micro[name]['events']:,} events)"
        )
    figures: Dict[str, Dict[str, float]] = {}
    if not skip_figures:
        figure_repeats = repeats or (3 if quick else 5)
        figures = _time_figure_points(quick, figure_repeats)
        for key, stats in figures.items():
            print(
                f"[figure] {key}: p50 {stats['p50_s'] * 1e3:,.0f} ms, "
                f"p95 {stats['p95_s'] * 1e3:,.0f} ms over {stats['runs']} runs"
            )
    return {
        "label": label,
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "micro": micro,
        "figure_points": figures,
    }


def _merge_and_write(document: Dict[str, object], path: Path) -> Dict[str, object]:
    """Merge this label's run into the accumulating BENCH_PR5.json."""
    merged: Dict[str, object] = {"schema": "repro-lb-bench/1", "runs": {}}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing, dict) and isinstance(existing.get("runs"), dict):
                merged = existing
                merged.setdefault("schema", "repro-lb-bench/1")
        except (json.JSONDecodeError, OSError):
            pass
    merged["runs"][document["label"]] = document
    merged["speedup"] = _speedups(merged["runs"])
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return merged


def _speedups(runs: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    """after/before ratios when both labels are present (else empty)."""
    before = runs.get("before")
    after = runs.get("after")
    if not before or not after:
        return {}
    result: Dict[str, object] = {}
    micro = {}
    for name, stats in after.get("micro", {}).items():
        base = before.get("micro", {}).get(name)
        if base and base.get("events_per_sec"):
            micro[name] = round(stats["events_per_sec"] / base["events_per_sec"], 3)
    if micro:
        result["micro_events_per_sec"] = micro
    figures = {}
    for key, stats in after.get("figure_points", {}).items():
        base = before.get("figure_points", {}).get(key)
        if base and stats.get("best_s"):
            figures[key] = round(base["best_s"] / stats["best_s"], 3)
    if figures:
        result["figure_point_wall"] = figures
    return result


def check_floor(document: Dict[str, object], floor_path: Path = FLOOR_PATH) -> List[str]:
    """Compare microbench events/sec against the committed floors.

    Returns the list of violations; the caller fails the run when any are
    present.  Figure-point wall times are deliberately *not* floored -- they
    depend on the host far more than the kernel-bound microbenches do and
    stay warn-only via the speedup section.
    """
    violations: List[str] = []
    if not floor_path.exists():
        return [f"no baseline floor file at {floor_path}"]
    floors = json.loads(floor_path.read_text()).get("micro_events_per_sec_floor", {})
    for name, floor in floors.items():
        stats = document["micro"].get(name)
        if stats is None:
            violations.append(f"floor check: microbench {name!r} missing from this run")
            continue
        if stats["events_per_sec"] < floor:
            violations.append(
                f"floor check: {name} at {stats['events_per_sec']:,.0f} events/s "
                f"is below the committed floor of {floor:,.0f}"
            )
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="after",
                        help="label for this run in BENCH_PR5.json (default: after)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced load for CI (smaller scale, fewer repeats)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override the per-benchmark repeat count")
    parser.add_argument("--skip-figures", action="store_true",
                        help="microbenchmarks only (no figure points)")
    parser.add_argument("--scale", action="store_true",
                        help="run the PR 6 scale sweep instead, writing BENCH_PR6.json")
    parser.add_argument("--output", default=None,
                        help="result JSON path (default: BENCH_PR5.json at the repo "
                             "root, BENCH_PR6.json with --scale)")
    parser.add_argument("--check-floor", action="store_true",
                        help="fail (exit 1) when microbench events/sec fall below "
                             "the committed floors")
    args = parser.parse_args(argv)

    if args.scale:
        document = run_scale(quick=args.quick, repeats=args.repeats)
        output = Path(args.output or BENCH6_PATH)
        output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"[bench] wrote scale sweep to {output}")
        return 0

    document = run_harness(
        args.label, quick=args.quick, repeats=args.repeats, skip_figures=args.skip_figures
    )
    merged = _merge_and_write(document, Path(args.output or BENCH_PATH))
    print(f"[bench] wrote label {args.label!r} to {args.output or BENCH_PATH}")
    for key, ratio in (merged.get("speedup", {}).get("figure_point_wall", {}) or {}).items():
        print(f"[speedup] {key}: {ratio:.2f}x")
    if args.check_floor:
        violations = check_floor(document)
        for violation in violations:
            print(f"::error::{violation}")
        if violations:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
