"""Kernel/figure performance harness (see :mod:`benchmarks.perf.harness`)."""
