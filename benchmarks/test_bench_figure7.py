"""Benchmark: Fig. 7 — memory/disk-bound environment."""

from conftest import bench_joins, bench_time_limit, bench_workers, write_report

from repro.experiments import figure7
from repro.experiments.figure7 import degree_table

SIZES = (20, 40, 60, 80)


def _run():
    return figure7.run(
        system_sizes=SIZES,
        arrival_rates=(0.05, 0.025),
        measured_joins=bench_joins(25),
        max_simulated_time=bench_time_limit(90.0),
        workers=bench_workers(),
    )


def test_figure7_memory_bound(benchmark):
    experiment = benchmark.pedantic(_run, iterations=1, rounds=1)
    write_report("figure7", experiment.table() + "\n\n" + degree_table(experiment))

    def point(series, x):
        return experiment.value(series, x)

    # With tiny buffers MIN-IO-SUOPT raises the degree of parallelism with the
    # system size to minimise overflow I/O, while pmu-cpu+LUM (CPU is idle)
    # sticks to roughly psu-opt.
    suopt_80 = point("MIN-IO-SUOPT @0.05 QPS/PE", 80)
    pmu_80 = point("pmu_cpu+LUM @0.05 QPS/PE", 80)
    assert suopt_80.result.average_degree >= pmu_80.result.average_degree

    # The extra parallelism pays off: comparable temporary I/O per query and a
    # response time at least as good (the paper's Fig. 7 shows a clear win; the
    # short benchmark runs leave some noise, hence the tolerances).
    assert (
        suopt_80.result.average_overflow_pages
        <= pmu_80.result.average_overflow_pages * 1.25 + 5
    )
    assert suopt_80.result.join_response_time <= pmu_80.result.join_response_time * 1.25
    suopt_60 = point("MIN-IO-SUOPT @0.05 QPS/PE", 60)
    pmu_60 = point("pmu_cpu+LUM @0.05 QPS/PE", 60)
    assert suopt_60.result.join_response_time <= pmu_60.result.join_response_time * 1.05

    # The environment really is memory-bound, not CPU-bound.
    assert pmu_80.result.cpu_utilization < 0.5
