"""Benchmark: Fig. 8 — influence of join complexity (selectivity sweep)."""

from conftest import bench_joins, bench_time_limit, bench_workers, write_report

from repro.experiments import figure8
from repro.experiments.figure8 import improvement_table

SELECTIVITIES = (0.001, 0.01, 0.05)


def _run():
    return figure8.run(
        selectivities=SELECTIVITIES,
        measured_joins=bench_joins(25),
        max_simulated_time=bench_time_limit(90.0),
        workers=bench_workers(),
    )


def test_figure8_join_complexity(benchmark):
    experiment = benchmark.pedantic(_run, iterations=1, rounds=1)
    write_report("figure8", experiment.table() + "\n\n" + improvement_table(experiment))

    def rt(series, selectivity):
        return experiment.value(series, selectivity * 100).result.join_response_time

    # Dynamic strategies improve on the static psu_opt+RANDOM baseline for
    # small and medium joins, where the static degree (30) over-parallelises.
    assert rt("pmu_cpu+LUM", 0.001) < rt("psu_opt+RANDOM", 0.001)
    assert rt("OPT-IO-CPU", 0.001) < rt("psu_opt+RANDOM", 0.001)
    assert rt("OPT-IO-CPU", 0.01) < rt("psu_opt+RANDOM", 0.01)

    # For large joins the dynamic schemes still avoid temporarily overloaded
    # nodes: at least one of them beats the static baseline (the paper reports
    # ~18 % improvement; the margin here is small and noisy).
    best_large = min(rt("MIN-IO", 0.05), rt("MIN-IO-SUOPT", 0.05), rt("OPT-IO-CPU", 0.05),
                     rt("psu_noIO+LUM", 0.05))
    assert best_large < rt("psu_opt+RANDOM", 0.05)

    # The relative advantage of dynamic load balancing shrinks as the optimal
    # degree of parallelism approaches the system size (paper's conclusion).
    def improvement(series, selectivity):
        base = rt("psu_opt+RANDOM", selectivity)
        return 1.0 - rt(series, selectivity) / base

    assert improvement("OPT-IO-CPU", 0.001) > improvement("OPT-IO-CPU", 0.05) - 0.05
    best_improvement_large = max(
        improvement("MIN-IO", 0.05),
        improvement("MIN-IO-SUOPT", 0.05),
        improvement("OPT-IO-CPU", 0.05),
    )
    assert improvement("OPT-IO-CPU", 0.001) + 0.10 >= best_improvement_large
