"""Benchmark: Fig. 4 — parameter table, and cost-model derived quantities."""

from conftest import write_report

from repro.config import SystemConfig
from repro.experiments import render_parameter_table
from repro.scheduling import CostModel
from repro.workload import JoinQuery


def _run():
    table = render_parameter_table()
    cost_model = CostModel(SystemConfig(num_pe=60))
    derived = []
    for selectivity, label in ((0.001, "0.1 %"), (0.01, "1 %"), (0.05, "5 %")):
        query = JoinQuery(scan_selectivity=selectivity)
        derived.append(
            f"selectivity {label:>5}: psu-opt = {cost_model.psu_opt(query):3d}   "
            f"psu-noIO = {cost_model.psu_no_io(query):3d}"
        )
    return table + "\n\nDerived degrees of parallelism (paper: 10/30/70 and 1/3/14):\n" + "\n".join(derived)


def test_parameter_table_and_derived_degrees(benchmark):
    text = benchmark.pedantic(_run, iterations=1, rounds=1)
    write_report("figure4_parameters", text)
    assert "20 MIPS" in text
    assert "psu-noIO =   3" in text
    assert "psu-noIO =  14" in text
