"""Ablation benchmarks for design choices called out in DESIGN.md.

Two ablations beyond the paper's own figures:

* the CPU-reduction exponent of formula (3.2) -- how aggressively pmu-cpu
  throttles parallelism under load;
* the control-node adaptive correction (LUM's artificial memory adjustment)
  -- what happens when consecutive queries see stale, unadapted load data.
"""

from dataclasses import replace

from conftest import bench_joins, bench_time_limit, write_report

from repro.experiments.scenarios import homogeneous_config
from repro.scheduling import (
    DynamicCpuDegree,
    IsolatedStrategy,
    LeastUtilizedMemoryPlacement,
)
from repro.simulation.driver import SimulationDriver


def _run_with_exponent(exponent: float):
    config = homogeneous_config(60)
    config = config.with_overrides(control=replace(config.control, cpu_reduction_exponent=exponent))
    driver = SimulationDriver(config, strategy="pmu_cpu+LUM")
    return driver.run_multi_user(
        measured_joins=bench_joins(25), max_simulated_time=bench_time_limit(60.0)
    )


def _run_with_adaptation(increment: float):
    config = homogeneous_config(60)
    config = config.with_overrides(
        control=replace(config.control, adaptive_cpu_increment=increment)
    )
    strategy = IsolatedStrategy(DynamicCpuDegree(), LeastUtilizedMemoryPlacement())
    driver = SimulationDriver(config, strategy=strategy)
    return driver.run_multi_user(
        measured_joins=bench_joins(25), max_simulated_time=bench_time_limit(60.0)
    )


def test_ablation_cpu_reduction_exponent(benchmark):
    def run_all():
        return {exponent: _run_with_exponent(exponent) for exponent in (1.0, 3.0, 6.0)}

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)
    lines = ["Ablation: formula (3.2) exponent (pmu_cpu+LUM, 60 PE, 0.25 QPS/PE)"]
    for exponent, result in results.items():
        lines.append(
            f"  exponent={exponent:>3}: rt={result.join_response_time_ms:8.1f} ms  "
            f"avg degree={result.average_degree:5.1f}  cpu={result.cpu_utilization:4.2f}"
        )
    write_report("ablation_exponent", "\n".join(lines))
    # A lower exponent throttles parallelism earlier -> smaller average degree.
    assert results[1.0].average_degree <= results[6.0].average_degree


def test_ablation_control_adaptation(benchmark):
    def run_all():
        return {increment: _run_with_adaptation(increment) for increment in (0.0, 0.05)}

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)
    lines = ["Ablation: adaptive control-node correction (pmu_cpu+LUM, 60 PE)"]
    for increment, result in results.items():
        lines.append(
            f"  increment={increment:4.2f}: rt={result.join_response_time_ms:8.1f} ms  "
            f"cpu={result.cpu_utilization:4.2f}  mem={result.memory_utilization:4.2f}"
        )
    write_report("ablation_adaptation", "\n".join(lines))
    for result in results.values():
        assert result.joins_completed > 0
