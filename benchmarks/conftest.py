"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one table/figure of the paper.  The
simulated workload sizes are kept modest so the whole suite completes in
minutes; set ``REPRO_BENCH_JOINS`` (measured join completions per point) and
``REPRO_BENCH_TIME_LIMIT`` (simulated-seconds cap per point) to increase
fidelity.  The reproduced tables are printed and written to
``benchmarks/results/``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_report(name: str, text: str) -> None:
    """Persist a reproduced figure/table and echo it to stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


def bench_joins(default: int) -> int:
    """Measured joins per point for benchmarks (env-overridable)."""
    try:
        return max(5, int(os.environ.get("REPRO_BENCH_JOINS", default)))
    except ValueError:
        return default


def bench_time_limit(default: float) -> float:
    try:
        return float(os.environ.get("REPRO_BENCH_TIME_LIMIT", default))
    except ValueError:
        return default


@pytest.fixture
def report_writer():
    return write_report
