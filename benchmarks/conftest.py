"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one table/figure of the paper through the
declarative scenario engine (:mod:`repro.runner`): the figure's points fan
out over ``REPRO_BENCH_WORKERS`` worker processes (default: one per CPU
core), so the suite scales with the machine.  The simulated workload sizes
are kept modest so the whole suite completes in minutes; set
``REPRO_BENCH_JOINS`` (measured join completions per point) and
``REPRO_BENCH_TIME_LIMIT`` (simulated-seconds cap per point) to increase
fidelity.  The reproduced tables are printed and written to
``benchmarks/results/``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.base import default_measured_joins, default_time_limit

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_report(name: str, text: str) -> None:
    """Persist a reproduced figure/table and echo it to stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


def bench_joins(default: int) -> int:
    """Measured joins per point for benchmarks (env-overridable)."""
    return default_measured_joins(default)


def bench_time_limit(default: float) -> float:
    return default_time_limit(default)


def bench_workers(default: int | None = None) -> int:
    """Worker processes per figure run (``REPRO_BENCH_WORKERS``-overridable).

    Defaults to one worker per CPU core so the independent points of a sweep
    run concurrently; benchmarks stay deterministic because every point is
    fully described by its spec (results are bit-identical at any worker
    count).
    """
    fallback = default if default is not None else (os.cpu_count() or 1)
    try:
        value = int(os.environ.get("REPRO_BENCH_WORKERS", fallback))
    except ValueError:
        value = fallback
    if value == 0:  # same contract as --workers 0 / ParallelRunner(workers=0)
        value = os.cpu_count() or 1
    return max(1, value)


@pytest.fixture
def report_writer():
    return write_report
