#!/usr/bin/env python3
"""Heterogeneous query/OLTP workload: the scenario that motivates the paper.

A 40-PE system runs debit-credit OLTP transactions (100 TPS per OLTP node,
affinity-routed to the nodes holding relation A) concurrently with parallel
join queries (0.075 QPS per PE).  The example contrasts a static strategy
(psu-opt + RANDOM), the isolated dynamic strategy pmu-cpu + LUM and the
integrated OPT-IO-CPU strategy, showing why the number of join processors and
their selection must be decided together and with respect to every resource.

Run with:  python examples/mixed_oltp_workload.py [A|B]
"""

import sys

from repro import SimulationDriver
from repro.experiments.scenarios import mixed_workload_config


def main() -> None:
    placement = (sys.argv[1] if len(sys.argv) > 1 else "A").upper()
    config = mixed_workload_config(40, oltp_placement=placement)
    print(f"System under test: {config.describe()}")
    print(f"OLTP runs on the {placement} nodes "
          f"({'20 %' if placement == 'A' else '80 %'} of the PEs)\n")

    print(f"{'strategy':<16} {'join rt [ms]':>13} {'oltp rt [ms]':>13} {'degree':>7} "
          f"{'overflow':>9} {'cpu':>5} {'mem':>5}")
    print("-" * 76)
    for strategy in ("psu_opt+RANDOM", "psu_noIO+LUM", "pmu_cpu+LUM", "OPT-IO-CPU"):
        driver = SimulationDriver(config, strategy=strategy)
        result = driver.run_multi_user(measured_joins=25, max_simulated_time=45)
        print(
            f"{strategy:<16} {result.join_response_time_ms:>13.1f} "
            f"{result.oltp_response_time * 1e3:>13.1f} {result.average_degree:>7.1f} "
            f"{result.average_overflow_pages:>9.1f} {result.cpu_utilization:>5.2f} "
            f"{result.memory_utilization:>5.2f}"
        )

    print(
        "\nThe integrated strategy (OPT-IO-CPU) uses the control node's view of"
        "\nper-node free memory and CPU load to keep join work off the OLTP nodes"
        "\nwhile still avoiding temporary file I/O -- the static and isolated"
        "\nschemes either overload the OLTP nodes or spill the hash tables to disk."
    )


if __name__ == "__main__":
    main()
