#!/usr/bin/env python3
"""Compare every load balancing strategy on a CPU-loaded 60-PE system.

This reproduces, at reduced run length, the situation of the paper's Figs. 5
and 6 at a fixed system size: a homogeneous parallel-join workload whose
throughput requirement makes the CPU the critical resource, so that the
choice of the degree of join parallelism and of the join processors decides
the response time.

Run with:  python examples/strategy_comparison.py [num_pe]
"""

import sys

from repro import SimulationDriver, strategy_names
from repro.experiments.scenarios import homogeneous_config


def main() -> None:
    num_pe = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    config = homogeneous_config(num_pe)
    print(f"Comparing {len(strategy_names())} strategies on: {config.describe()}\n")
    print(f"{'strategy':<18} {'rt [ms]':>9} {'p':>6} {'overflow':>9} {'cpu':>5} {'mem':>5}")
    print("-" * 60)

    rows = []
    for name in strategy_names():
        driver = SimulationDriver(config, strategy=name)
        result = driver.run_multi_user(measured_joins=30, max_simulated_time=60)
        rows.append((name, result))
        print(
            f"{name:<18} {result.join_response_time_ms:>9.1f} {result.average_degree:>6.1f} "
            f"{result.average_overflow_pages:>9.1f} {result.cpu_utilization:>5.2f} "
            f"{result.memory_utilization:>5.2f}"
        )

    best = min(rows, key=lambda row: row[1].join_response_time)
    print(f"\nBest strategy for this load: {best[0]} "
          f"({best[1].join_response_time_ms:.0f} ms average join response time)")


if __name__ == "__main__":
    main()
