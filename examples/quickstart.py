#!/usr/bin/env python3
"""Quickstart: simulate one Shared Nothing system and compare two strategies.

Builds a 40-PE Shared Nothing database machine with the paper's default
parameters (Fig. 4), runs the homogeneous join workload (0.25 QPS per PE,
1 % scan selectivity) under two load balancing strategies and prints the
resulting join response times, chosen degrees of parallelism and resource
utilisations.

Run with:  python examples/quickstart.py
"""

from repro import SimulationDriver, SystemConfig


def main() -> None:
    config = SystemConfig(num_pe=40)
    print(f"System under test: {config.describe()}\n")

    print("Single-user baseline (one join query at a time, psu-opt processors):")
    baseline = SimulationDriver(config, strategy="psu_opt+RANDOM").run_single_user(num_queries=5)
    print(f"  {baseline.row()}\n")

    print("Multi-user mode (0.25 joins per second per PE):")
    for strategy in ("psu_opt+RANDOM", "OPT-IO-CPU"):
        driver = SimulationDriver(config, strategy=strategy)
        result = driver.run_multi_user(measured_joins=40, max_simulated_time=60)
        print(f"  {result.row()}")

    print(
        "\nThe dynamic, integrated OPT-IO-CPU strategy adapts the degree of join"
        "\nparallelism and the processor selection to the current CPU and memory"
        "\nload, keeping multi-user response times close to the single-user case."
    )


if __name__ == "__main__":
    main()
