#!/usr/bin/env python3
"""Memory-bound joins: when MORE parallelism is the right answer.

The paper's Fig. 7 shows the counter-intuitive case: with small buffers and a
single disk per PE for temporary files, the CPU is idle but memory and the
temp disk are the bottleneck.  Here the right move is to RAISE the degree of
join parallelism so the aggregate memory of the join processors holds the
hash table -- exactly what the integrated MIN-IO-SUOPT strategy does, and what
the CPU-oriented pmu-cpu policy misses.

Run with:  python examples/memory_bound_joins.py
"""

from repro import SimulationDriver
from repro.experiments.scenarios import memory_bound_config


def main() -> None:
    print("Memory-bound environment: 5 buffer pages per PE, 1 disk per PE\n")
    print(f"{'#PE':>4} {'strategy':<14} {'rt [ms]':>9} {'degree':>7} {'overflow':>9} "
          f"{'mem wait [ms]':>14} {'cpu':>5}")
    print("-" * 70)
    for num_pe in (20, 40, 80):
        config = memory_bound_config(num_pe, arrival_rate_per_pe=0.05)
        for strategy in ("pmu_cpu+LUM", "MIN-IO-SUOPT"):
            driver = SimulationDriver(config, strategy=strategy)
            result = driver.run_multi_user(measured_joins=25, max_simulated_time=90)
            print(
                f"{num_pe:>4} {strategy:<14} {result.join_response_time_ms:>9.1f} "
                f"{result.average_degree:>7.1f} {result.average_overflow_pages:>9.1f} "
                f"{result.average_memory_wait * 1e3:>14.1f} {result.cpu_utilization:>5.2f}"
            )

    print(
        "\nMIN-IO-SUOPT increases the number of join processors with the system"
        "\nsize (the paper reports an average degree of up to 42 at 80 PE) so that"
        "\nthe aggregate working space still holds the inner relation, trading"
        "\n(cheap) CPU parallelism for (expensive) temporary file I/O.  Short runs"
        "\nare noisy; use the figure-7 benchmark for the full comparison."
    )


if __name__ == "__main__":
    main()
